package experiments

// The yallasplit three-way comparison: does statically decomposing a god
// header beat substituting it, lose to it, or compose with it? Every
// subject is measured twice per mode — once on the original tree and
// once on the decomposed tree (with substitution retargeted at the
// composed part) — yielding the decompose-only, substitute-only, and
// composed compile-cost deltas behind results/split_baseline.json.

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/buildcache"
	"repro/internal/corpus"
	"repro/internal/devcycle"
	"repro/internal/obs"
	"repro/internal/split"
	"repro/internal/vfs"
)

// SplitModes lists the configurations the comparison covers — all five
// build modes, so the composed numbers include the PCH/LTO extensions.
var SplitModes = []devcycle.Mode{
	devcycle.Default, devcycle.PCH, devcycle.Yalla, devcycle.YallaPCH, devcycle.YallaLTO,
}

// SplitVariant is one subject × mode × tree measurement (virtual
// milliseconds, rounded so the JSON rendering is byte-stable).
type SplitVariant struct {
	CompileMs float64 `json:"compile_ms"`
	CycleMs   float64 `json:"cycle_ms"`
}

// SplitSubjectResult is one subject's row of the comparison artifact.
type SplitSubjectResult struct {
	Name    string `json:"name"`
	Library string `json:"library"`
	// Partition shape and identity (diffed in CI like check_baseline).
	Parts     int    `json:"parts"`
	UsedParts int    `json:"used_parts"`
	Decls     int    `json:"decls"`
	Consumers int    `json:"consumers"`
	Digest    string `json:"digest"`
	Composed  string `json:"composed_target"`
	// Original measures the untouched tree (its Yalla rows are the
	// substitute-only configuration); Decomposed measures the rewritten
	// tree (its Default row is decompose-only, its Yalla rows the
	// composed configuration substituting the composed part).
	Original   map[string]SplitVariant `json:"original"`
	Decomposed map[string]SplitVariant `json:"decomposed"`
	// Headline step-④ compile-cost reductions vs Default on the
	// original tree, in percent.
	DecomposePct  float64 `json:"decompose_reduction_pct"`
	SubstitutePct float64 `json:"substitute_reduction_pct"`
	ComposedPct   float64 `json:"composed_reduction_pct"`
}

// SplitReport is the results/split_baseline.json payload.
type SplitReport struct {
	MaxParts int                   `json:"max_parts"`
	Modes    []string              `json:"modes"`
	Subjects []*SplitSubjectResult `json:"subjects"`
}

// SplitRunConfig configures RunSplitAll.
type SplitRunConfig struct {
	// Jobs bounds the subject-level worker pool (<= 0 means 1) and the
	// per-subject TU analysis inside Decompose.
	Jobs int
	// MaxParts caps each partition (0 = uncapped); the committed
	// baseline uses 4, matching the golden partitions.
	MaxParts int
	// Subjects restricts the run; nil means corpus.All().
	Subjects []*corpus.Subject
	// Cache is the build cache shared by all workers; virtual times are
	// identical with or without it.
	Cache *buildcache.Cache
	Obs   *obs.Obs
}

// RunSplitSubject decomposes one subject on a clone of its tree and
// measures every mode on both variants, attributing the work to a
// "split.subject" span with one child span per variant × mode.
func RunSplitSubject(s *corpus.Subject, cfg SplitRunConfig) (*SplitSubjectResult, error) {
	sp := cfg.Obs.Start("split.subject")
	sp.SetStr("name", s.Name)
	sp.SetStr("library", s.Library)
	defer sp.End()
	so := sp.Obs()

	decFS := s.FS.Clone()
	res, err := split.Decompose(split.Options{
		FS: decFS, SearchPaths: s.SearchPaths, Sources: s.Sources,
		Header: s.Header, MaxParts: cfg.MaxParts, Jobs: cfg.Jobs, Obs: so,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: decompose: %v", s.Name, err)
	}

	out := &SplitSubjectResult{
		Name: s.Name, Library: s.Library,
		Parts: len(res.Parts), Decls: len(res.Decls), Consumers: len(res.Consumers),
		Digest: res.Digest, Composed: res.ComposedTarget,
	}
	for _, p := range res.Parts {
		if p.Used {
			out.UsedParts++
		}
	}

	if out.Original, err = splitMeasure(so, s, s.FS, s.Header, cfg.Cache, "original"); err != nil {
		return nil, fmt.Errorf("%s: %v", s.Name, err)
	}
	if out.Decomposed, err = splitMeasure(so, s, decFS, res.ComposedTarget, cfg.Cache, "decomposed"); err != nil {
		return nil, fmt.Errorf("%s: %v", s.Name, err)
	}

	base := out.Original[devcycle.Default.String()].CompileMs
	if base > 0 {
		out.DecomposePct = pctLess(base, out.Decomposed[devcycle.Default.String()].CompileMs)
		out.SubstitutePct = pctLess(base, out.Original[devcycle.Yalla.String()].CompileMs)
		out.ComposedPct = pctLess(base, out.Decomposed[devcycle.Yalla.String()].CompileMs)
	}
	sp.SetInt("parts", int64(out.Parts))
	return out, nil
}

// splitMeasure runs every SplitMode against one tree. The Yalla modes
// substitute yallaHeader — the subject's own header on the original
// tree, the composed part target on the decomposed one.
func splitMeasure(o *obs.Obs, s *corpus.Subject, tree *vfs.FS, yallaHeader string, bc *buildcache.Cache, variant string) (map[string]SplitVariant, error) {
	out := map[string]SplitVariant{}
	for _, mode := range SplitModes {
		sub := *s
		if mode == devcycle.Yalla || mode == devcycle.YallaPCH || mode == devcycle.YallaLTO {
			sub.Header = yallaHeader
		}
		msp := o.Start("split.mode")
		msp.SetStr("variant", variant)
		msp.SetStr("mode", mode.String())
		st, err := devcycle.PrepareWith(&sub, mode, devcycle.Config{
			FS: tree.Overlay(), Cache: bc, Obs: msp.Obs(),
		})
		if err != nil {
			msp.End()
			return nil, fmt.Errorf("%s/%v: %v", variant, mode, err)
		}
		st.SetObs(msp.Obs())
		cy, err := st.Cycle()
		if err != nil {
			msp.End()
			return nil, fmt.Errorf("%s/%v: %v", variant, mode, err)
		}
		msp.SetInt("compile_us", cy.Compile.Microseconds())
		msp.End()
		out[mode.String()] = SplitVariant{
			CompileMs: round3(ms(cy.Compile)),
			CycleMs:   round3(ms(cy.Total())),
		}
	}
	return out, nil
}

// RunSplitAll measures the configured subjects on a bounded worker pool,
// returning rows in corpus order. The first error aborts the run.
func RunSplitAll(cfg SplitRunConfig) (*SplitReport, error) {
	subjects := cfg.Subjects
	if subjects == nil {
		subjects = corpus.All()
	}
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(subjects) {
		jobs = len(subjects)
	}

	rep := &SplitReport{MaxParts: cfg.MaxParts}
	for _, m := range SplitModes {
		rep.Modes = append(rep.Modes, m.String())
	}
	rep.Subjects = make([]*SplitSubjectResult, len(subjects))

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		idx      = make(chan int)
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		wo := cfg.Obs.Lane(fmt.Sprintf("split worker %d", w+1))
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := RunSplitSubject(subjects[i], SplitRunConfig{
					Jobs: cfg.Jobs, MaxParts: cfg.MaxParts, Cache: cfg.Cache, Obs: wo,
				})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				rep.Subjects[i] = r
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := range subjects {
			idx <- i
		}
	}()
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

// JSON renders the report byte-stably for results/split_baseline.json:
// fixed field order, sorted map keys, milliseconds rounded at emission.
func (r *SplitReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SplitTable renders the human-facing three-way comparison.
func SplitTable(r *SplitReport) string {
	var b []byte
	b = append(b, fmt.Sprintf("Three-way comparison — step-④ compile [ms] and reduction vs Default (max %d parts)\n", r.MaxParts)...)
	b = append(b, fmt.Sprintf("%-24s %5s %8s %10s %10s %10s | %9s %9s %9s\n",
		"Subject", "parts", "decls", "default", "decomp", "composed", "decomp%", "subst%", "comp%")...)
	sumD, sumS, sumC := 0.0, 0.0, 0.0
	n := 0
	for _, s := range r.Subjects {
		if s == nil {
			continue
		}
		def := s.Original[devcycle.Default.String()].CompileMs
		dec := s.Decomposed[devcycle.Default.String()].CompileMs
		comp := s.Decomposed[devcycle.Yalla.String()].CompileMs
		b = append(b, fmt.Sprintf("%-24s %5d %8d %10.1f %10.1f %10.2f | %8.1f%% %8.1f%% %8.2f%%\n",
			s.Name, s.Parts, s.Decls, def, dec, comp,
			s.DecomposePct, s.SubstitutePct, s.ComposedPct)...)
		sumD += s.DecomposePct
		sumS += s.SubstitutePct
		sumC += s.ComposedPct
		n++
	}
	if n > 0 {
		b = append(b, fmt.Sprintf("%-24s %5s %8s %10s %10s %10s | %8.1f%% %8.1f%% %8.2f%%\n",
			"average", "", "", "", "", "",
			sumD/float64(n), sumS/float64(n), sumC/float64(n))...)
	}
	return string(b)
}

// pctLess is the percent reduction from base to v, rounded.
func pctLess(base, v float64) float64 { return round3((base - v) / base * 100) }

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
