package experiments

import (
	"strings"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/corpus"
	"repro/internal/devcycle"
	"repro/internal/vfs"
)

// condenseResult runs (and caches) the cheapest subject across the three
// modes for the rendering tests.
func condenseResult(t *testing.T) *SubjectResult {
	t.Helper()
	s := corpus.ByName("condense")
	if s == nil {
		t.Fatal("condense missing")
	}
	r, err := RunSubjectCached(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunSubjectAllModes(t *testing.T) {
	r := condenseResult(t)
	if r.Name != "condense" || r.Library != "RapidJSON" {
		t.Fatalf("result = %+v", r)
	}
	for _, mode := range Modes {
		m, ok := r.Modes[mode]
		if !ok {
			t.Fatalf("mode %v missing", mode)
		}
		if m.CompileMs <= 0 || m.RunMs <= 0 || m.LinkMs <= 0 {
			t.Fatalf("%v times = %+v", mode, m)
		}
	}
	if r.YallaSpeedup() < 10 {
		t.Fatalf("condense yalla speedup = %.1f", r.YallaSpeedup())
	}
	if r.PCHSpeedup() < 1.0 || r.PCHSpeedup() > 2.0 {
		t.Fatalf("condense pch speedup = %.1f", r.PCHSpeedup())
	}
	if r.CycleSpeedup(devcycle.Yalla) <= 1 {
		t.Fatalf("cycle speedup = %.2f", r.CycleSpeedup(devcycle.Yalla))
	}
}

func TestRunSubjectCachedIsStable(t *testing.T) {
	a := condenseResult(t)
	b := condenseResult(t)
	if a != b {
		t.Fatal("cache miss on second run")
	}
}

func TestTableRendering(t *testing.T) {
	results := []*SubjectResult{condenseResult(t)}
	t2 := Table2(results)
	if !strings.Contains(t2, "condense") || !strings.Contains(t2, "Yalla Speedup") {
		t.Fatalf("table2:\n%s", t2)
	}
	if !strings.Contains(t2, "average") {
		t.Fatalf("table2 missing average row:\n%s", t2)
	}
	t3 := Table3(results)
	if !strings.Contains(t3, "Default LOCs") || !strings.Contains(t3, "condense") {
		t.Fatalf("table3:\n%s", t3)
	}
}

func TestFigRendering(t *testing.T) {
	results := []*SubjectResult{condenseResult(t)}
	f7 := Fig7(results, "condense")
	if !strings.Contains(f7, "backend") || !strings.Contains(f7, "Default") {
		t.Fatalf("fig7:\n%s", f7)
	}
	f8 := Fig8(results)
	if !strings.Contains(f8, "condense") {
		t.Fatalf("fig8:\n%s", f8)
	}
	f10 := Fig10(results, "condense")
	if !strings.Contains(f10, "tool") {
		t.Fatalf("fig10:\n%s", f10)
	}
	if Fig10(results, "nope") == "" {
		t.Fatal("fig10 unknown subject should say so")
	}
}

func TestFig9SelfContained(t *testing.T) {
	out := Fig9()
	if !strings.Contains(out, "callq count: 0") || !strings.Contains(out, "callq count: 3") {
		t.Fatalf("fig9:\n%s", out)
	}
	if !strings.Contains(out, "_Z14paren_operator") {
		t.Fatalf("fig9 missing mangled call:\n%s", out)
	}
}

func TestCSVsAndTraces(t *testing.T) {
	results := []*SubjectResult{condenseResult(t)}
	csvs := CSVs(results)
	want := []string{
		"compilation_kokkos_normal.csv", "compilation_other_normal.csv",
		"compilation_other_pch.csv", "compilation_other_yalla.csv",
		"stats.csv",
	}
	for _, w := range want {
		if _, ok := csvs[w]; !ok {
			t.Errorf("missing CSV %s", w)
		}
	}
	if !strings.Contains(csvs["compilation_other_normal.csv"], "condense,") {
		t.Fatalf("csv content:\n%s", csvs["compilation_other_normal.csv"])
	}
	if !strings.HasPrefix(csvs["stats.csv"], "subject,default_loc") {
		t.Fatalf("stats header:\n%s", csvs["stats.csv"])
	}

	traces := Traces(results)
	tr, ok := traces["condense-yalla.json"]
	if !ok {
		t.Fatalf("missing trace; have %v", keys(traces))
	}
	if !strings.Contains(tr, `"traceEvents"`) || !strings.Contains(tr, `"Backend"`) {
		t.Fatalf("trace content:\n%s", tr)
	}
}

func TestSortByTableOrder(t *testing.T) {
	a := &SubjectResult{Name: "condense"}
	b := &SubjectResult{Name: "02"}
	rs := []*SubjectResult{a, b}
	SortByTableOrder(rs)
	if rs[0].Name != "02" {
		t.Fatalf("order = %v, %v", rs[0].Name, rs[1].Name)
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestParallelAndCachedRunsAreByteIdentical is the tentpole's safety
// property: neither the worker pool width nor the build cache may change
// a single byte of the paper's outputs. It renders Table 2, Table 3, and
// Figure 7 from (a) a sequential uncached run, (b) a sequential run into
// a fresh build cache, and (c) an 8-way parallel run served from that
// warm cache, resetting the subject-result memo in between so every
// variant genuinely re-simulates.
func TestParallelAndCachedRunsAreByteIdentical(t *testing.T) {
	subjects := []*corpus.Subject{
		corpus.ByName("condense"),
		corpus.ByName("drawing"),
		corpus.ByName("chat_server"),
	}
	for _, s := range subjects {
		if s == nil {
			t.Fatal("subject missing from corpus")
		}
	}
	render := func(res []*SubjectResult) string {
		return Table2(res) + "\n" + Table3(res) + "\n" + Fig7(res, "drawing")
	}
	run := func(jobs int, bc *buildcache.Cache) string {
		t.Helper()
		ResetCache()
		res, err := RunAllWith(RunConfig{Jobs: jobs, Subjects: subjects, Cache: bc})
		if err != nil {
			t.Fatal(err)
		}
		return render(res)
	}
	defer ResetCache()

	bc := buildcache.New()
	uncached := run(1, nil)
	coldCache := run(1, bc)
	warmParallel := run(8, bc)
	if uncached != coldCache {
		t.Errorf("build cache changed the rendered output:\n--- uncached ---\n%s\n--- cached ---\n%s", uncached, coldCache)
	}
	if uncached != warmParallel {
		t.Errorf("-j 8 warm run changed the rendered output:\n--- -j 1 ---\n%s\n--- -j 8 ---\n%s", uncached, warmParallel)
	}
	if st := bc.Stats(); st.TUHits == 0 || st.TokenHits == 0 {
		t.Errorf("warm run did not hit the cache: %+v", st)
	}
}

// TestRunAllWithStopsOnFirstError checks error propagation from the
// worker pool: a subject that cannot run fails the whole fan-out.
func TestRunAllWithStopsOnFirstError(t *testing.T) {
	defer ResetCache()
	ResetCache()
	bad := &corpus.Subject{Name: "broken-subject", Library: "none", FS: vfs.New(), MainFile: "absent.cpp"}
	_, err := RunAllWith(RunConfig{Jobs: 4, Subjects: []*corpus.Subject{bad}})
	if err == nil {
		t.Fatal("expected an error from the unrunnable subject")
	}
}
