package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/buildcache"
	"repro/internal/corpus"
	"repro/internal/devcycle"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// chromeTrace mirrors the exported trace JSON for validation.
type chromeTrace struct {
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Name string         `json:"name"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestRunAllReturnsPartialResultsOnError checks the failure contract:
// the first error stops the fan-out, but subjects that completed before
// it keep their result slots (the failed and abandoned ones are nil), so
// the caller can report progress and flush recorded observability.
func TestRunAllReturnsPartialResultsOnError(t *testing.T) {
	defer ResetCache()
	ResetCache()
	good := corpus.ByName("condense")
	if good == nil {
		t.Fatal("subject condense missing from corpus")
	}
	bad := &corpus.Subject{Name: "broken-subject", Library: "none", FS: vfs.New(), MainFile: "absent.cpp"}

	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	out, err := RunAllWith(RunConfig{
		Jobs:     1,
		Subjects: []*corpus.Subject{good, bad, good},
		Obs:      o,
	})
	if err == nil {
		t.Fatal("expected an error from the unrunnable subject")
	}
	if len(out) != 3 {
		t.Fatalf("partial results length = %d, want 3", len(out))
	}
	if out[0] == nil {
		t.Error("subject completed before the failure lost its result")
	}
	if out[1] != nil {
		t.Error("failed subject has a non-nil result")
	}
	done := 0
	for _, r := range out {
		if r != nil {
			done++
		}
	}
	// The metrics recorded up to the failure must survive it. The third
	// slot is the same subject as the first, so its completion (it can
	// race the stop signal) is served from the memo, not re-counted.
	if got := reg.Snapshot().Counters["experiments.subjects"]; got != 1 {
		t.Errorf("experiments.subjects counter = %d, want 1 (%d slots filled)", got, done)
	}
}

// TestObsRunTraceAndMetrics is the integration test for the tentpole: a
// traced, metered, cached -j 1 run must export a Chrome trace containing
// the full span hierarchy (worker lane, subject → mode → prepare/cycle →
// compile spans, and per subject × mode virtual phase lanes) plus a
// metrics snapshot whose buildcache counters equal the cache's own
// Stats() totals.
func TestObsRunTraceAndMetrics(t *testing.T) {
	defer ResetCache()
	ResetCache()
	s := corpus.ByName("condense")
	if s == nil {
		t.Fatal("subject condense missing from corpus")
	}

	tracer := obs.NewTracer(obs.NewVirtualClock(time.Millisecond))
	reg := obs.NewRegistry()
	o := obs.New(tracer, reg)
	bc := buildcache.New()
	bc.AttachMetrics(o)

	res, err := RunAllWith(RunConfig{Jobs: 1, Subjects: []*corpus.Subject{s}, Cache: bc, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] == nil {
		t.Fatalf("unexpected results: %+v", res)
	}

	var buf bytes.Buffer
	if err := tracer.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	type span struct{ ts, dur float64 }
	wallSpans := map[string][]span{} // name -> instances (wall pid only)
	virtualLanes := map[int]string{} // tid -> lane name
	virtualPhases := map[string][]string{}
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Pid == obs.PidVirtual:
			virtualLanes[ev.Tid] = ev.Args["name"].(string)
		case ev.Ph == "X" && ev.Pid == obs.PidWall:
			wallSpans[ev.Name] = append(wallSpans[ev.Name], span{ev.TS, ev.Dur})
		case ev.Ph == "X" && ev.Pid == obs.PidVirtual:
			lane := virtualLanes[ev.Tid]
			virtualPhases[lane] = append(virtualPhases[lane], ev.Name)
		}
	}

	// Wall-clock hierarchy: one subject span, one mode span per mode,
	// each mode containing prepare and cycle, cycles containing compiles.
	if n := len(wallSpans["subject"]); n != 1 {
		t.Errorf("got %d subject spans, want 1", n)
	}
	if n := len(wallSpans["mode"]); n != len(Modes) {
		t.Errorf("got %d mode spans, want %d", n, len(Modes))
	}
	for _, name := range []string{"prepare", "cycle", "compile", "preprocess", "parse", "sema"} {
		if len(wallSpans[name]) == 0 {
			t.Errorf("no %q spans in trace", name)
		}
	}
	// Nesting: every mode span lies inside the subject span's interval,
	// and every cycle span inside some mode span (virtual clock ⇒ exact).
	subj := wallSpans["subject"][0]
	contains := func(outer, inner span) bool {
		return inner.ts >= outer.ts && inner.ts+inner.dur <= outer.ts+outer.dur
	}
	for _, m := range wallSpans["mode"] {
		if !contains(subj, m) {
			t.Errorf("mode span %+v not nested in subject %+v", m, subj)
		}
	}
	for _, c := range wallSpans["cycle"] {
		nested := false
		for _, m := range wallSpans["mode"] {
			if contains(m, c) {
				nested = true
			}
		}
		if !nested {
			t.Errorf("cycle span %+v not nested in any mode span", c)
		}
	}

	// Virtual lanes: one per subject × mode, each holding that mode's
	// positive phases in pipeline order.
	for _, mode := range Modes {
		lane := s.Name + "/" + mode.String()
		phases := virtualPhases[lane]
		if len(phases) == 0 {
			t.Errorf("virtual lane %q missing or empty", lane)
			continue
		}
		m := res[0].Modes[mode]
		want := 0
		for _, ms := range []float64{m.StartupMs, m.PreprocessMs, m.LexParseMs, m.SemaMs, m.PCHLoadMs, m.InstantiateMs, m.BackendMs} {
			if ms > 0 {
				want++
			}
		}
		if len(phases) != want {
			t.Errorf("lane %q has %d phase spans, want %d (%v)", lane, len(phases), want, phases)
		}
		if mode == devcycle.PCH && !contains2(phases, "PCHLoad") {
			t.Errorf("PCH lane %q missing PCHLoad phase: %v", lane, phases)
		}
	}

	// Metrics must agree with the cache's own totals.
	st := bc.Stats()
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"buildcache.token.hits":   st.TokenHits,
		"buildcache.token.misses": st.TokenMisses,
		"buildcache.tu.hits":      st.TUHits,
		"buildcache.tu.misses":    st.TUMisses,
		"buildcache.evictions":    st.Evictions,
		"buildcache.bytes_saved":  st.BytesSaved,
		"buildcache.tokens_saved": st.TokensSaved,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (cache stats: %+v)", name, got, want, st)
		}
	}
	if st.TokenHits == 0 {
		t.Error("cached run recorded no token hits; metric comparison is vacuous")
	}
	for _, name := range []string{"experiments.subjects", "preprocessor.files", "compilesim.compiles", "devcycle.cycles"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s not incremented", name)
		}
	}
	if snap.Histograms["compile.cost_ms"].Count == 0 {
		t.Error("compile.cost_ms histogram empty")
	}
}

func contains2(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestAttributionReport checks the cost-attribution artifact: rows for
// every subject × mode, per-mode totals that equal the row sums, and a
// cache section priced from TokensSaved.
func TestAttributionReport(t *testing.T) {
	defer ResetCache()
	ResetCache()
	s := corpus.ByName("condense")
	bc := buildcache.New()
	res, err := RunAllWith(RunConfig{Jobs: 1, Subjects: []*corpus.Subject{s}, Cache: bc})
	if err != nil {
		t.Fatal(err)
	}
	rep := Attribution(res, bc)
	if len(rep.Rows) != len(Modes) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(Modes))
	}
	for _, mt := range rep.Modes {
		var sum float64
		for _, row := range rep.Rows {
			if row.Mode == mt.Mode {
				sum += row.Phases.Total()
			}
		}
		if diff := sum - mt.TotalMs; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("mode %s total %v != row sum %v", mt.Mode, mt.TotalMs, sum)
		}
	}
	if rep.Cache == nil {
		t.Fatal("cache section missing")
	}
	if rep.Cache.TokensSaved > 0 && rep.Cache.FrontendSavedMs <= 0 {
		t.Errorf("tokens saved (%d) but no frontend ms attributed", rep.Cache.TokensSaved)
	}
	blob, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed AttributionReport
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatalf("attribution JSON does not round-trip: %v", err)
	}
	if tbl := rep.Table(); !strings.Contains(tbl, "cache-adjusted total") {
		t.Errorf("Table() missing cache adjustment line:\n%s", tbl)
	}

	// Attribution over a partial result set skips the nil slots.
	partial := Attribution([]*SubjectResult{nil, res[0]}, nil)
	if len(partial.Rows) != len(Modes) {
		t.Errorf("partial attribution rows = %d, want %d", len(partial.Rows), len(Modes))
	}
	if partial.Cache != nil {
		t.Error("cache section present without a cache")
	}
}
