package experiments

import (
	"bytes"
	"testing"

	"repro/internal/buildcache"
	"repro/internal/corpus"
	"repro/internal/devcycle"
)

// TestRunSplitSubject measures one subject through the full three-way
// comparison and checks the shape and direction of the numbers.
func TestRunSplitSubject(t *testing.T) {
	s := corpus.ByName("02")
	r, err := RunSplitSubject(s, SplitRunConfig{Jobs: 4, MaxParts: 4, Cache: buildcache.New()})
	if err != nil {
		t.Fatalf("RunSplitSubject: %v", err)
	}
	if r.Parts < 2 || r.Decls == 0 || r.Digest == "" || r.Composed == "" {
		t.Fatalf("degenerate partition: %+v", r)
	}
	for _, mode := range SplitModes {
		if _, ok := r.Original[mode.String()]; !ok {
			t.Errorf("original missing mode %v", mode)
		}
		if _, ok := r.Decomposed[mode.String()]; !ok {
			t.Errorf("decomposed missing mode %v", mode)
		}
	}
	// Decomposition must make the Default compile cheaper (the consumer
	// now includes one part instead of the full god header), and the
	// composed configuration must not regress vs substitute-only.
	def := r.Original[devcycle.Default.String()].CompileMs
	dec := r.Decomposed[devcycle.Default.String()].CompileMs
	if dec >= def {
		t.Errorf("decompose-only did not reduce compile cost: %0.1f -> %0.1f ms", def, dec)
	}
	if r.DecomposePct <= 0 || r.SubstitutePct <= 0 || r.ComposedPct <= 0 {
		t.Errorf("non-positive reductions: decomp %.1f%% subst %.1f%% comp %.1f%%",
			r.DecomposePct, r.SubstitutePct, r.ComposedPct)
	}
}

// TestRunSplitAllDeterministic runs the report twice over a subject
// subset at different -j and demands byte-identical JSON — the property
// the CI diff against results/split_baseline.json depends on.
func TestRunSplitAllDeterministic(t *testing.T) {
	subjects := []*corpus.Subject{corpus.ByName("condense"), corpus.ByName("02")}
	run := func(jobs int) []byte {
		rep, err := RunSplitAll(SplitRunConfig{
			Jobs: jobs, MaxParts: 4, Subjects: subjects, Cache: buildcache.New(),
		})
		if err != nil {
			t.Fatalf("RunSplitAll -j%d: %v", jobs, err)
		}
		if rep.Subjects[0].Name != "condense" || rep.Subjects[1].Name != "02" {
			t.Fatalf("rows out of order: %s, %s", rep.Subjects[0].Name, rep.Subjects[1].Name)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(1), run(2)
	if !bytes.Equal(a, b) {
		t.Fatalf("report differs across -j:\n-j1:\n%s\n-j2:\n%s", a, b)
	}
}
