// Frontend microbenchmarks: the per-stage throughput and allocation
// record behind results/bench_frontend.json. Where BenchHarness times
// the full matrix, these isolate the lexer, preprocessor, and parser on
// real corpus inputs so a frontend regression is attributable to a
// stage before it shows up in wall clock.

package experiments

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/cpp/lexer"
	"repro/internal/cpp/parser"
	"repro/internal/cpp/preprocessor"
	"repro/internal/cpp/token"
)

// FrontendMicro is one frontend microbenchmark result, the JSON
// rendering of a testing.BenchmarkResult with -benchmem semantics.
type FrontendMicro struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func micro(name string, nbytes int64, fn func(b *testing.B)) FrontendMicro {
	res := testing.Benchmark(fn)
	m := FrontendMicro{
		Name:        name,
		Iters:       res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if res.NsPerOp() > 0 {
		m.MBPerS = float64(nbytes) / float64(res.NsPerOp()) * 1e9 / 1e6
	}
	return m
}

// BenchFrontend runs the frontend stage microbenchmarks on the first
// corpus subject: lexing its heaviest header, preprocessing its main
// translation unit, and parsing the preprocessed stream.
func BenchFrontend() ([]FrontendMicro, error) {
	s := corpus.All()[0]

	const lexFile = "kokkos/Kokkos_Core.hpp"
	src, err := s.FS.Read(lexFile)
	if err != nil {
		return nil, err
	}
	pp := preprocessor.New(s.FS, s.SearchPaths...)
	res, err := pp.Preprocess(s.MainFile)
	if err != nil {
		return nil, err
	}
	ppBytes := int64(0)
	for _, f := range append([]string{s.MainFile}, res.Includes...) {
		if c, err := s.FS.Read(f); err == nil {
			ppBytes += int64(len(c))
		}
	}

	out := []FrontendMicro{
		micro("lex/"+lexFile, int64(len(src)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lexer.Tokenize(lexFile, src); err != nil {
					b.Fatal(err)
				}
			}
		}),
		micro("preprocess/"+s.MainFile, ppBytes, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := preprocessor.New(s.FS, s.SearchPaths...)
				if _, err := p.Preprocess(s.MainFile); err != nil {
					b.Fatal(err)
				}
			}
		}),
		micro("parse/"+s.MainFile, ppBytes, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Parse may splice '>>' tokens in place (copy-on-write),
				// so hand it a fresh copy each iteration.
				cp := append([]token.Token(nil), res.Tokens...)
				if _, err := parser.New(cp).Parse(); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
	return out, nil
}
