// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) over the synthetic corpora: Table 2 (compilation time
// and speedups under Default/PCH/YALLA), Table 3 (LOC and header counts),
// Figure 7 (per-phase compiler timers), Figure 8 (development-cycle
// speedup), Figure 9 (generated-code comparison), and Figure 10
// (first-time build breakdown). It is shared by cmd/experiments and the
// benchmark harness.
package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/buildcache"
	"repro/internal/codegen"
	"repro/internal/compilesim"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/devcycle"
	"repro/internal/obs"
	"repro/internal/pch"
)

// ModeResult is one subject × mode measurement.
type ModeResult struct {
	CompileMs float64
	LinkMs    float64
	RunMs     float64
	// Phase breakdown of the step-④ compile (Fig. 7).
	StartupMs     float64
	PreprocessMs  float64
	LexParseMs    float64
	SemaMs        float64
	PCHLoadMs     float64
	InstantiateMs float64
	BackendMs     float64
	FrontendMs    float64
	// Unit statistics (Table 3).
	LOC     int
	Headers int
	// Setup (one-time) costs (Fig. 10).
	ToolMs           float64
	WrapperCompileMs float64
	PCHBuildMs       float64
	// WallNs is the real (not virtual) time spent simulating this
	// subject × mode, for the harness benchmark report. It never feeds
	// any paper table or figure.
	WallNs int64
}

// CycleMs is the development-cycle latency.
func (m ModeResult) CycleMs() float64 { return m.CompileMs + m.LinkMs + m.RunMs }

// SubjectResult aggregates one subject across the three configurations.
type SubjectResult struct {
	Name    string
	Library string
	Modes   map[devcycle.Mode]ModeResult
}

// PCHSpeedup is Table 2's "PCH Speedup" column.
func (r *SubjectResult) PCHSpeedup() float64 {
	return r.Modes[devcycle.Default].CompileMs / r.Modes[devcycle.PCH].CompileMs
}

// YallaSpeedup is Table 2's "Yalla Speedup" column.
func (r *SubjectResult) YallaSpeedup() float64 {
	return r.Modes[devcycle.Default].CompileMs / r.Modes[devcycle.Yalla].CompileMs
}

// CycleSpeedup is Figure 8's y-axis for the given mode.
func (r *SubjectResult) CycleSpeedup(m devcycle.Mode) float64 {
	return r.Modes[devcycle.Default].CycleMs() / r.Modes[m].CycleMs()
}

// Modes lists the configurations in presentation order.
var Modes = []devcycle.Mode{devcycle.Default, devcycle.PCH, devcycle.Yalla}

// RunSubject measures one subject under all three configurations.
func RunSubject(s *corpus.Subject) (*SubjectResult, error) {
	return RunSubjectWith(s, nil)
}

// RunSubjectWith is RunSubject with a build cache shared across
// subjects. Virtual times are identical with or without it.
func RunSubjectWith(s *corpus.Subject, bc *buildcache.Cache) (*SubjectResult, error) {
	return runSubject(s, bc, nil)
}

// runSubject measures one subject under all modes, recording a "subject"
// span with one child span per mode plus a virtual-cost lane per
// subject × mode on the handle's tracer (nil o disables recording).
func runSubject(s *corpus.Subject, bc *buildcache.Cache, o *obs.Obs) (*SubjectResult, error) {
	ssp := o.Start("subject")
	ssp.SetStr("name", s.Name)
	ssp.SetStr("library", s.Library)
	defer ssp.End()
	so := ssp.Obs()

	out := &SubjectResult{Name: s.Name, Library: s.Library, Modes: map[devcycle.Mode]ModeResult{}}
	for _, mode := range Modes {
		start := time.Now()
		msp := so.Start("mode")
		msp.SetStr("mode", mode.String())
		// Debug lines carry the span ID, so a slow mode in the log links
		// straight to its lane in the trace export.
		mlog := msp.Obs().Logger()
		mlog.Debug("mode start", "subject", s.Name, "mode", mode.String(), "phase", "prepare")
		st, err := devcycle.PrepareWith(s, mode, devcycle.Config{Cache: bc, Obs: msp.Obs()})
		if err != nil {
			msp.End()
			return nil, fmt.Errorf("%s/%v: %v", s.Name, mode, err)
		}
		st.SetObs(msp.Obs())
		cycle, err := st.Cycle()
		if err != nil {
			msp.End()
			return nil, fmt.Errorf("%s/%v: %v", s.Name, mode, err)
		}
		mlog.Debug("mode done", "subject", s.Name, "mode", mode.String(), "phase", "cycle",
			"wall_ms", time.Since(start).Milliseconds())
		msp.End()
		ph := st.Phases()
		stats := st.Stats()
		out.Modes[mode] = ModeResult{
			CompileMs:        ms(cycle.Compile),
			LinkMs:           ms(cycle.Link),
			RunMs:            ms(cycle.Run),
			StartupMs:        ms(ph.Startup),
			PreprocessMs:     ms(ph.Preprocess),
			LexParseMs:       ms(ph.LexParse),
			SemaMs:           ms(ph.Sema),
			PCHLoadMs:        ms(ph.PCHLoad),
			InstantiateMs:    ms(ph.Instantiate),
			BackendMs:        ms(ph.Backend),
			FrontendMs:       ms(ph.Frontend()),
			LOC:              stats.LOC,
			Headers:          stats.Headers,
			ToolMs:           ms(st.Setup.Tool),
			WrapperCompileMs: ms(st.Setup.WrapperCompile),
			PCHBuildMs:       ms(st.Setup.PCHBuild),
			WallNs:           time.Since(start).Nanoseconds(),
		}
	}
	o.Counter("experiments.subjects").Add(1)
	emitVirtualLanes(o, out)
	return out, nil
}

// emitVirtualLanes renders the subject's per-mode virtual phase costs as
// explicit-timestamp spans on the trace's virtual-cost process, so the
// deterministic per-phase timeline the paper plots (Fig. 7) sits next to
// the real wall-clock worker lanes in one Chrome trace.
func emitVirtualLanes(o *obs.Obs, r *SubjectResult) {
	for _, mode := range Modes {
		lane := o.VirtualLane(r.Name + "/" + mode.String())
		if lane == nil {
			return
		}
		m := r.Modes[mode]
		phases := []struct {
			name string
			ms   float64
		}{
			{"Startup", m.StartupMs},
			{"Preprocess", m.PreprocessMs},
			{"LexParse", m.LexParseMs},
			{"Sema", m.SemaMs},
			{"PCHLoad", m.PCHLoadMs},
			{"Instantiate", m.InstantiateMs},
			{"Backend", m.BackendMs},
		}
		t := time.Duration(0)
		for _, ph := range phases {
			if ph.ms <= 0 {
				continue
			}
			d := time.Duration(ph.ms * float64(time.Millisecond))
			lane.Emit(ph.name, t, d)
			t += d
		}
	}
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// inflight is one subject's memoized (or in-progress) measurement.
// Completion is signaled by closing done; res/err are immutable after.
type inflight struct {
	done chan struct{}
	res  *SubjectResult
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*inflight{}
)

// RunSubjectCached memoizes RunSubject per subject name (the simulation
// is deterministic). Concurrent callers for the same subject share one
// in-flight run (singleflight) instead of duplicating the work.
func RunSubjectCached(s *corpus.Subject) (*SubjectResult, error) {
	return runSubjectShared(s, nil, nil)
}

func runSubjectShared(s *corpus.Subject, bc *buildcache.Cache, o *obs.Obs) (*SubjectResult, error) {
	cacheMu.Lock()
	if e, ok := cache[s.Name]; ok {
		cacheMu.Unlock()
		o.Counter("experiments.singleflight.dedup").Add(1)
		<-e.done
		return e.res, e.err
	}
	e := &inflight{done: make(chan struct{})}
	cache[s.Name] = e
	cacheMu.Unlock()

	e.res, e.err = runSubject(s, bc, o)
	if e.err != nil {
		// Do not pin failures: a later caller retries. Waiters already
		// holding e still observe this error.
		cacheMu.Lock()
		delete(cache, s.Name)
		cacheMu.Unlock()
	}
	close(e.done)
	return e.res, e.err
}

// ResetCache drops all memoized subject results. Intended for benchmarks
// and tests that need a cold harness; not safe to call concurrently with
// in-flight runs.
func ResetCache() {
	cacheMu.Lock()
	cache = map[string]*inflight{}
	cacheMu.Unlock()
}

// RunConfig configures RunAllWith.
type RunConfig struct {
	// Jobs is the worker-pool width; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Subjects restricts the run; nil means corpus.All().
	Subjects []*corpus.Subject
	// Cache is the build cache shared by all workers; nil disables
	// frontend caching (every TU is lexed and parsed from scratch).
	Cache *buildcache.Cache
	// Progress, when set, is called from worker goroutines as each
	// subject starts; it must be safe for concurrent use.
	Progress func(s *corpus.Subject)
	// Obs, when set, records the run: each worker gets its own trace
	// lane ("worker N"), each subject a span tree, and the registry the
	// pipeline's counters and histograms. Nil disables recording.
	Obs *obs.Obs
}

// RunAll measures every subject sequentially with no build cache — the
// cold path, kept for compatibility and as the baseline the benchmarks
// compare against.
func RunAll() ([]*SubjectResult, error) {
	return RunAllWith(RunConfig{Jobs: 1})
}

// RunAllWith measures the configured subjects on a bounded worker pool.
// Results come back in presentation (corpus) order regardless of
// completion order, and duplicate subjects are deduplicated via the
// singleflight result cache. The first error stops the fan-out and is
// returned — together with the partial results: every subject that
// completed before the stop keeps its slot, unfinished subjects are nil.
// Callers that only care about the all-or-nothing contract can keep
// ignoring the slice when err != nil.
func RunAllWith(cfg RunConfig) ([]*SubjectResult, error) {
	subjects := cfg.Subjects
	if subjects == nil {
		subjects = corpus.All()
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(subjects) {
		jobs = len(subjects)
	}
	if jobs < 1 {
		jobs = 1
	}

	out := make([]*SubjectResult, len(subjects))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stop     = make(chan struct{})
		idx      = make(chan int)
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		wo := cfg.Obs.Lane(fmt.Sprintf("worker %d", w+1))
		go func() {
			defer wg.Done()
			for i := range idx {
				s := subjects[i]
				if cfg.Progress != nil {
					cfg.Progress(s)
				}
				r, err := runSubjectShared(s, cfg.Cache, wo)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(stop)
					})
					continue
				}
				out[i] = r
			}
		}()
	}
	// Feed indices in presentation order; stop feeding after the first
	// error (in-flight subjects drain, queued ones are abandoned).
	go func() {
		defer close(idx)
		for i := range subjects {
			select {
			case <-stop:
				return
			case idx <- i:
			}
		}
	}()
	wg.Wait()
	// On error the partial results still come back so the caller can
	// report how far the run got (and flush any trace/metrics recorded).
	return out, firstErr
}

// ------------------------------------------------------------- rendering

// Table2 renders the compilation-time table.
func Table2(results []*SubjectResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-11s %12s %9s %11s %12s %14s\n",
		"File", "Subject", "Default [ms]", "PCH [ms]", "Yalla [ms]", "PCH Speedup", "Yalla Speedup")
	geoP, geoY, n := 0.0, 0.0, 0
	for _, r := range results {
		d := r.Modes[devcycle.Default].CompileMs
		p := r.Modes[devcycle.PCH].CompileMs
		y := r.Modes[devcycle.Yalla].CompileMs
		fmt.Fprintf(&b, "%-24s %-11s %12.0f %9.0f %11.1f %11.1fx %13.1fx\n",
			r.Name, r.Library, d, p, y, r.PCHSpeedup(), r.YallaSpeedup())
		geoP += r.PCHSpeedup()
		geoY += r.YallaSpeedup()
		n++
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-24s %-11s %12s %9s %11s %11.1fx %13.1fx\n",
			"average", "", "", "", "", geoP/float64(n), geoY/float64(n))
	}
	return b.String()
}

// Table3 renders the code-statistics table.
func Table3(results []*SubjectResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %13s %11s %16s %14s\n",
		"File", "Default LOCs", "Yalla LOCs", "Default Headers", "Yalla Headers")
	for _, r := range results {
		d := r.Modes[devcycle.Default]
		y := r.Modes[devcycle.Yalla]
		fmt.Fprintf(&b, "%-24s %13d %11d %16d %14d\n",
			r.Name, d.LOC, y.LOC, d.Headers, y.Headers)
	}
	return b.String()
}

// Fig7 renders the phase breakdown for the named subjects.
func Fig7(results []*SubjectResult, names ...string) string {
	var b strings.Builder
	for _, name := range names {
		r := findResult(results, name)
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "Figure 7 — %s: time per compilation phase [ms]\n", name)
		fmt.Fprintf(&b, "  %-8s %10s %10s %8s %8s %12s %9s | %9s %8s\n",
			"mode", "preproc", "lexparse", "sema", "pchload", "instantiate", "backend", "frontend", "total")
		for _, mode := range Modes {
			m := r.Modes[mode]
			fmt.Fprintf(&b, "  %-8s %10.1f %10.1f %8.1f %8.1f %12.1f %9.1f | %9.1f %8.1f\n",
				mode, m.PreprocessMs, m.LexParseMs, m.SemaMs, m.PCHLoadMs,
				m.InstantiateMs, m.BackendMs, m.FrontendMs, m.CompileMs)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig8 renders development-cycle speedups per subject.
func Fig8(results []*SubjectResult) string {
	var b strings.Builder
	b.WriteString("Figure 8 — development cycle speedup over Default (compile+link+run)\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %14s %14s\n", "Subject", "PCH", "Yalla", "cycle(def)ms", "cycle(yalla)ms")
	for _, r := range results {
		fmt.Fprintf(&b, "%-24s %9.2fx %9.2fx %14.0f %14.0f\n",
			r.Name, r.CycleSpeedup(devcycle.PCH), r.CycleSpeedup(devcycle.Yalla),
			r.Modes[devcycle.Default].CycleMs(), r.Modes[devcycle.Yalla].CycleMs())
	}
	return b.String()
}

// Fig9 renders the 02 kernel's generated code in the three variants.
func Fig9() string {
	var b strings.Builder
	b.WriteString("Figure 9 — 02 kernel generated code\n")
	emit := func(title string, yalla, lto bool) {
		opts := codegen.DefaultOptions()
		opts.LTO = lto
		lines, err := codegen.Kernel02(yalla, 8).Emit("kernel02", opts)
		if err != nil {
			fmt.Fprintf(&b, "error: %v\n", err)
			return
		}
		fmt.Fprintf(&b, "\n-- %s (callq count: %d) --\n", title, codegen.CountCalls(lines))
		for _, l := range lines {
			b.WriteString("  " + l + "\n")
		}
	}
	emit("Default (Fig. 9b: inlined accesses)", false, false)
	emit("YALLA (Fig. 9c: callq paren_operator)", true, false)
	emit("YALLA + LTO (§5.4: inlining recovered)", true, true)
	return b.String()
}

// Fig10 renders the first-time-compilation breakdown for a subject.
func Fig10(results []*SubjectResult, name string) string {
	r := findResult(results, name)
	if r == nil {
		return "no such subject: " + name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — first-time compilation of %s [ms]\n", name)
	d := r.Modes[devcycle.Default]
	y := r.Modes[devcycle.Yalla]
	fmt.Fprintf(&b, "  Default: source compile %.0f  (total %.0f)\n", d.CompileMs, d.CompileMs)
	fmt.Fprintf(&b, "  Yalla:   tool %.0f + wrappers compile %.0f + source compile %.1f  (total %.0f)\n",
		y.ToolMs, y.WrapperCompileMs, y.CompileMs,
		y.ToolMs+y.WrapperCompileMs+y.CompileMs)
	return b.String()
}

// Extensions runs the §5.4/§6 extension configurations (Yalla+PCH,
// Yalla+LTO) against the standard three on the named subjects and renders
// a comparison table: the ablation behind the paper's two design
// decisions (reject LTO; propose PCH combination as future work).
func Extensions(names ...string) (string, error) {
	var b strings.Builder
	b.WriteString("Extensions — development-cycle ablation (§5.4 LTO, §6 PCH combination)\n")
	fmt.Fprintf(&b, "%-14s %-10s %10s %8s %8s %10s\n", "subject", "mode", "compile", "link", "run", "cycle[ms]")
	modes := []devcycle.Mode{devcycle.Default, devcycle.PCH, devcycle.Yalla, devcycle.YallaPCH, devcycle.YallaLTO}
	for _, name := range names {
		s := corpus.ByName(name)
		if s == nil {
			return "", fmt.Errorf("unknown subject %q", name)
		}
		for _, mode := range modes {
			st, err := devcycle.Prepare(s, mode)
			if err != nil {
				return "", err
			}
			c, err := st.Cycle()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-14s %-10s %10.1f %8.1f %8.1f %10.1f\n",
				name, mode, ms(c.Compile), ms(c.Link), ms(c.Run), ms(c.Total()))
		}
		b.WriteString("\n")
	}

	// §4.2/§6: the cost of the used-symbol set growing, with and without
	// pre-declaration.
	s := corpus.ByName("team_policy")
	if s != nil {
		b.WriteString("Symbol-growth ablation (§4.2 rerun vs §6 pre-declaration), team_policy:\n")
		plain, err := devcycle.Prepare(s, devcycle.Yalla)
		if err != nil {
			return "", err
		}
		grow, rerun, err := plain.CycleWithNewSymbol("Kokkos::fence")
		if err != nil {
			return "", err
		}
		pre, err := devcycle.PrepareWithOptions(s, devcycle.Yalla, []string{"Kokkos::fence"})
		if err != nil {
			return "", err
		}
		growPre, rerunPre, err := pre.CycleWithNewSymbol("Kokkos::fence")
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  first use of Kokkos::fence, plain:        %8.1f ms cycle (tool rerun: %v)\n",
			ms(grow.Total()), rerun)
		fmt.Fprintf(&b, "  first use of Kokkos::fence, pre-declared: %8.1f ms cycle (tool rerun: %v)\n",
			ms(growPre.Total()), rerunPre)
	}
	return b.String(), nil
}

// GCCSummary reproduces the paper's summarized GCC results (§5.3: "We
// obtain similar results with GCC 9.4.0 ... YALLA speeds up compilation
// time by ... 31.4× for GCC while PCH speeds up compilation time by ...
// 2.7× for GCC"): the same pipeline under the GCC cost model, reported as
// averages.
func GCCSummary() (string, error) {
	return GCCSummaryWith(nil)
}

// GCCSummaryWith is GCCSummary with a shared build cache. Because the
// cached frontend is cost-model independent, the GCC rerun reuses every
// TU the clang-model run already processed.
func GCCSummaryWith(bc *buildcache.Cache) (string, error) {
	var b strings.Builder
	b.WriteString("GCC summary — average compile-time speedups under the g++ cost model\n")
	fmt.Fprintf(&b, "%-24s %12s %9s %11s %8s %8s\n",
		"File", "Default [ms]", "PCH [ms]", "Yalla [ms]", "PCH", "Yalla")
	sumP, sumY := 0.0, 0.0
	n := 0
	for _, s := range corpus.All() {
		d, p, y, err := compileTriple(s, compilesim.GCCCostModel(), bc)
		if err != nil {
			return "", fmt.Errorf("%s: %v", s.Name, err)
		}
		fmt.Fprintf(&b, "%-24s %12.0f %9.0f %11.1f %7.1fx %7.1fx\n",
			s.Name, d, p, y, d/p, d/y)
		sumP += d / p
		sumY += d / y
		n++
	}
	fmt.Fprintf(&b, "%-24s %12s %9s %11s %7.1fx %7.1fx\n", "average", "", "", "",
		sumP/float64(n), sumY/float64(n))
	return b.String(), nil
}

// compileTriple compiles one subject under the three configurations with
// an explicit cost model, returning virtual milliseconds.
func compileTriple(s *corpus.Subject, model compilesim.CostModel, bc *buildcache.Cache) (def, pchMs, yal float64, err error) {
	fs := s.FS.Clone()
	cc := compilesim.New(fs, s.SearchPaths...)
	cc.Model = model
	cc.Cache = bc
	defObj, err := cc.Compile(s.MainFile)
	if err != nil {
		return 0, 0, 0, err
	}
	hdr := ""
	for _, sp := range s.SearchPaths {
		cand := sp + "/" + s.Header
		if sp == "." {
			cand = s.Header
		}
		if fs.Exists(cand) {
			hdr = cand
			break
		}
	}
	p, err := pch.BuildWithCache(fs, hdr, s.SearchPaths, nil, bc)
	if err != nil {
		return 0, 0, 0, err
	}
	cp := compilesim.New(fs, s.SearchPaths...)
	cp.Model = model
	cp.Cache = bc
	cp.PCH = p
	subOpts := core.Options{
		FS: fs, SearchPaths: s.SearchPaths, Sources: s.Sources,
		Header: s.Header, OutDir: s.OutDir(),
	}
	if bc != nil {
		subOpts.TokenCache = bc
	}
	pchObj, err := cp.Compile(s.MainFile)
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := core.Substitute(subOpts)
	if err != nil {
		return 0, 0, 0, err
	}
	paths := append([]string{s.OutDir()}, s.SearchPaths...)
	cy := compilesim.New(fs, paths...)
	cy.Model = model
	cy.Cache = bc
	yalObj, err := cy.Compile(res.ModifiedSources[s.MainFile])
	if err != nil {
		return 0, 0, 0, err
	}
	return float64(defObj.Phases.Total()) / 1e6,
		float64(pchObj.Phases.Total()) / 1e6,
		float64(yalObj.Phases.Total()) / 1e6, nil
}

func findResult(results []*SubjectResult, name string) *SubjectResult {
	for _, r := range results {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// ----------------------------------------------------------------- CSVs

// CSVs renders the artifact-style result files (A.6): per-mode
// compilation CSVs split into kokkos/other, and the stats CSV.
func CSVs(results []*SubjectResult) map[string]string {
	out := map[string]string{}
	modeName := map[devcycle.Mode]string{
		devcycle.Default: "normal", devcycle.PCH: "pch", devcycle.Yalla: "yalla",
	}
	for _, mode := range Modes {
		var kk, other strings.Builder
		kk.WriteString("subject,compile_ms,link_ms,run_ms\n")
		other.WriteString("subject,compile_ms,link_ms,run_ms\n")
		for _, r := range results {
			m := r.Modes[mode]
			line := fmt.Sprintf("%s,%.3f,%.3f,%.3f\n", r.Name, m.CompileMs, m.LinkMs, m.RunMs)
			if r.Library == "PyKokkos" {
				kk.WriteString(line)
			} else {
				other.WriteString(line)
			}
		}
		out["compilation_kokkos_"+modeName[mode]+".csv"] = kk.String()
		out["compilation_other_"+modeName[mode]+".csv"] = other.String()
	}
	var stats strings.Builder
	stats.WriteString("subject,default_loc,yalla_loc,default_headers,yalla_headers\n")
	for _, r := range results {
		d := r.Modes[devcycle.Default]
		y := r.Modes[devcycle.Yalla]
		fmt.Fprintf(&stats, "%s,%d,%d,%d,%d\n", r.Name, d.LOC, y.LOC, d.Headers, y.Headers)
	}
	out["stats.csv"] = stats.String()
	return out
}

// Traces renders Chrome Trace Viewer JSON per subject/mode, mirroring the
// artifact's results/traces files.
func Traces(results []*SubjectResult) map[string]string {
	out := map[string]string{}
	for _, r := range results {
		for _, mode := range Modes {
			m := r.Modes[mode]
			events := []struct {
				name string
				ms   float64
			}{
				{"Startup", m.StartupMs},
				{"Preprocess", m.PreprocessMs},
				{"LexParse", m.LexParseMs},
				{"Sema", m.SemaMs},
				{"PCHLoad", m.PCHLoadMs},
				{"Instantiate", m.InstantiateMs},
				{"Backend", m.BackendMs},
			}
			var b strings.Builder
			b.WriteString("{\"traceEvents\":[")
			t := 0.0
			first := true
			for _, ev := range events {
				if ev.ms <= 0 {
					continue
				}
				if !first {
					b.WriteString(",")
				}
				first = false
				fmt.Fprintf(&b, `{"name":%q,"ph":"X","ts":%.0f,"dur":%.0f,"pid":1,"tid":1}`,
					ev.name, t*1000, ev.ms*1000)
				t += ev.ms
			}
			b.WriteString("]}")
			name := fmt.Sprintf("%s-%s.json", r.Name, strings.ToLower(mode.String()))
			out[name] = b.String()
		}
	}
	return out
}

// ------------------------------------------------- harness benchmarking

// BenchRow is one subject × mode wall-clock measurement (real time spent
// simulating, not virtual compile time).
type BenchRow struct {
	Subject    string `json:"subject"`
	Library    string `json:"library"`
	Mode       string `json:"mode"`
	ColdWallNs int64  `json:"cold_wall_ns"`
	WarmWallNs int64  `json:"warm_wall_ns"`
}

// BenchCacheStats is the build cache traffic of a harness benchmark.
type BenchCacheStats struct {
	TokenHits   uint64 `json:"token_hits"`
	TokenMisses uint64 `json:"token_misses"`
	TUHits      uint64 `json:"tu_hits"`
	TUMisses    uint64 `json:"tu_misses"`
	Evictions   uint64 `json:"evictions"`
	BytesSaved  uint64 `json:"bytes_saved"`
	TokensSaved uint64 `json:"tokens_saved"`
}

// BenchReport is the results/bench_harness.json payload: the full
// subject matrix measured cold-sequential (-j 1, empty cache) and then
// warm-parallel (same cache, -j jobs).
type BenchReport struct {
	Jobs             int   `json:"jobs"`
	Subjects         int   `json:"subjects"`
	SequentialColdNs int64 `json:"sequential_cold_ns"`
	// ParallelColdNs times the matrix at -j jobs with the cache off —
	// the frontend-bound configuration the speed-pass acceptance gates
	// on (compare BaselineColdNs).
	ParallelColdNs int64   `json:"parallel_cold_ns"`
	ParallelWarmNs int64   `json:"parallel_warm_ns"`
	Speedup        float64 `json:"speedup"`
	// BaselineColdNs is the pre-pass frontend's parallel-cold wall time
	// measured the same way (cache off, same -j), passed in by the
	// caller; zero when no baseline was supplied.
	BaselineColdNs    int64           `json:"baseline_cold_ns,omitempty"`
	SpeedupVsBaseline float64         `json:"speedup_vs_baseline,omitempty"`
	Cache             BenchCacheStats `json:"cache"`
	// Frontend is the per-stage microbenchmark record (allocs/op, MB/s).
	Frontend []FrontendMicro `json:"frontend"`
	Rows     []BenchRow      `json:"rows"`
}

// BenchHarness measures the harness itself: one truly cold sequential
// run of the full matrix (one worker, no build cache — the pre-existing
// behavior of this harness), an untimed run that primes a fresh build
// cache, and then one timed warm parallel run against it. The
// subject-result memo is reset between runs, so every subject is
// genuinely re-simulated each time. Virtual outputs of all runs are
// identical; only wall clock differs.
func BenchHarness(jobs int) (*BenchReport, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	bc := buildcache.New()
	subjects := corpus.All()

	ResetCache()
	t0 := time.Now()
	cold, err := RunAllWith(RunConfig{Jobs: 1})
	if err != nil {
		return nil, fmt.Errorf("cold run: %v", err)
	}
	coldNs := time.Since(t0).Nanoseconds()

	ResetCache()
	tp := time.Now()
	if _, err := RunAllWith(RunConfig{Jobs: jobs}); err != nil {
		return nil, fmt.Errorf("parallel cold run: %v", err)
	}
	parallelColdNs := time.Since(tp).Nanoseconds()

	ResetCache()
	if _, err := RunAllWith(RunConfig{Jobs: jobs, Cache: bc}); err != nil {
		return nil, fmt.Errorf("priming run: %v", err)
	}

	ResetCache()
	t1 := time.Now()
	warm, err := RunAllWith(RunConfig{Jobs: jobs, Cache: bc})
	if err != nil {
		return nil, fmt.Errorf("warm run: %v", err)
	}
	warmNs := time.Since(t1).Nanoseconds()
	ResetCache()

	st := bc.Stats()
	rep := &BenchReport{
		Jobs:             jobs,
		Subjects:         len(subjects),
		SequentialColdNs: coldNs,
		ParallelColdNs:   parallelColdNs,
		ParallelWarmNs:   warmNs,
		Cache: BenchCacheStats{
			TokenHits: st.TokenHits, TokenMisses: st.TokenMisses,
			TUHits: st.TUHits, TUMisses: st.TUMisses,
			Evictions: st.Evictions, BytesSaved: st.BytesSaved,
			TokensSaved: st.TokensSaved,
		},
	}
	if warmNs > 0 {
		rep.Speedup = float64(coldNs) / float64(warmNs)
	}
	if rep.Frontend, err = BenchFrontend(); err != nil {
		return nil, fmt.Errorf("frontend microbenchmarks: %v", err)
	}
	for i, s := range subjects {
		for _, mode := range Modes {
			rep.Rows = append(rep.Rows, BenchRow{
				Subject:    s.Name,
				Library:    s.Library,
				Mode:       mode.String(),
				ColdWallNs: cold[i].Modes[mode].WallNs,
				WarmWallNs: warm[i].Modes[mode].WallNs,
			})
		}
	}
	return rep, nil
}

// JSON renders the report indented for results/bench_harness.json.
func (r *BenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// SortByTableOrder orders results in Table 2's row order.
func SortByTableOrder(results []*SubjectResult) {
	order := map[string]int{}
	for i, s := range corpus.All() {
		order[s.Name] = i
	}
	sort.SliceStable(results, func(i, j int) bool {
		return order[results[i].Name] < order[results[j].Name]
	})
}
