package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/buildcache"
)

// TestFrontendSpeedPassByteIdentical pins the frontend speed pass
// (interned identifiers, arena ASTs, zero-copy cached token streams,
// lazy positions, parallel per-file lexing) to the committed paper
// artifacts: a full-matrix run must reproduce every results/*.csv file
// byte for byte, with the build cache off and on. The goldens were
// produced by the pre-pass frontend, so any optimization that shifts a
// single virtual time, LOC count, or header count fails here.
func TestFrontendSpeedPassByteIdentical(t *testing.T) {
	goldenDir := filepath.Join("..", "..", "results")

	check := func(label string, bc *buildcache.Cache) {
		t.Helper()
		ResetCache()
		defer ResetCache()
		results, err := RunAllWith(RunConfig{Jobs: 4, Cache: bc})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for name, got := range CSVs(results) {
			want, err := os.ReadFile(filepath.Join(goldenDir, name))
			if err != nil {
				t.Fatalf("%s: reading golden %s: %v", label, name, err)
			}
			if got != string(want) {
				t.Errorf("%s: %s is not byte-identical to the committed golden", label, name)
			}
		}
		for name, got := range Traces(results) {
			want, err := os.ReadFile(filepath.Join(goldenDir, "traces", name))
			if err != nil {
				t.Fatalf("%s: reading golden trace %s: %v", label, name, err)
			}
			if got != string(want) {
				t.Errorf("%s: trace %s is not byte-identical to the committed golden", label, name)
			}
		}
	}

	check("cache off", nil)
	if t.Failed() {
		return
	}
	check("cache on", buildcache.New())
}
