package split_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/split"
)

var update = flag.Bool("update", false, "rewrite golden partition files")

// goldenSubjects are the corpus subjects with committed golden
// partitions, one per library shape (Kokkos, RapidJSON, OpenCV).
var goldenSubjects = []string{"02", "archiver", "drawing"}

func decomposeSubject(t *testing.T, name string, jobs int) *split.Result {
	t.Helper()
	s := corpus.ByName(name)
	if s == nil {
		t.Fatalf("unknown subject %q", name)
	}
	res, err := split.Decompose(split.Options{
		FS: s.FS.Clone(), SearchPaths: s.SearchPaths, Sources: s.Sources,
		Header: s.Header, MaxParts: 4, Jobs: jobs,
	})
	if err != nil {
		t.Fatalf("Decompose %s -j%d: %v", name, jobs, err)
	}
	return res
}

// sameFiles demands byte-identical written-file sets.
func sameFiles(t *testing.T, label string, a, b map[string]string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d files written", label, len(a), len(b))
	}
	for name, want := range a {
		got, ok := b[name]
		if !ok {
			t.Fatalf("%s: file %q missing", label, name)
		}
		if got != want {
			t.Fatalf("%s: file %q differs", label, name)
		}
	}
}

// TestDecomposeDeterministic checks the partition AND every written
// byte are identical at -j 1/4/8 and across two runs at the same -j.
func TestDecomposeDeterministic(t *testing.T) {
	for _, name := range goldenSubjects {
		name := name
		t.Run(name, func(t *testing.T) {
			base := decomposeSubject(t, name, 1)
			for _, jobs := range []int{1, 4, 8} {
				again := decomposeSubject(t, name, jobs)
				if again.Digest != base.Digest {
					t.Fatalf("-j%d digest %s != -j1 digest %s", jobs, again.Digest, base.Digest)
				}
				if again.PartitionJSON != base.PartitionJSON {
					t.Fatalf("-j%d partition JSON differs from -j1", jobs)
				}
				sameFiles(t, name, base.Files, again.Files)
				if again.ComposedTarget != base.ComposedTarget {
					t.Fatalf("-j%d composed target %q != %q", jobs, again.ComposedTarget, base.ComposedTarget)
				}
			}
		})
	}
}

// TestDecomposeGolden pins each golden subject's canonical partition.
// Run with -update to regenerate after an intentional change.
func TestDecomposeGolden(t *testing.T) {
	for _, name := range goldenSubjects {
		name := name
		t.Run(name, func(t *testing.T) {
			res := decomposeSubject(t, name, 4)
			path := filepath.Join("testdata", name+".partition.json")
			if *update {
				if err := os.WriteFile(path, []byte(res.PartitionJSON), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(want) != res.PartitionJSON {
				t.Errorf("partition drifted from golden %s:\ngot:\n%s\nwant:\n%s", path, res.PartitionJSON, want)
			}
		})
	}
}

// TestDecomposeReorderStable permutes the god header's declaration
// blocks (a graph-preserving edit: no reference crosses the swapped
// blocks) and demands the same canonical partition.
func TestDecomposeReorderStable(t *testing.T) {
	run := func(header string) *split.Result {
		t.Helper()
		fs := synthTree()
		fs.Write("lib/god.hpp", header)
		res, err := split.Decompose(synthOptions(fs))
		if err != nil {
			t.Fatalf("Decompose: %v", err)
		}
		return res
	}
	orig := run(`#ifndef GOD_HPP
#define GOD_HPP
#include "suba.hpp"
#include "subb.hpp"
#include "filler1.hpp"
#include "filler2.hpp"
namespace gx {
struct Alpha { AlphaBase base; };
inline int alpha_fn(int v) { return v + 1; }
struct Beta { BetaBase base; };
inline int beta_fn(int v) { return v + 2; }
}
#endif
`)
	permuted := run(`#ifndef GOD_HPP
#define GOD_HPP
#include "subb.hpp"
#include "suba.hpp"
#include "filler2.hpp"
#include "filler1.hpp"
namespace gx {
inline int beta_fn(int v) { return v + 2; }
struct Beta { BetaBase base; };
inline int alpha_fn(int v) { return v + 1; }
struct Alpha { AlphaBase base; };
}
#endif
`)
	if orig.Digest != permuted.Digest {
		t.Fatalf("decl reorder changed the partition:\noriginal:\n%s\npermuted:\n%s",
			orig.PartitionJSON, permuted.PartitionJSON)
	}
}
