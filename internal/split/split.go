// Package split implements automatic god-header decomposition via
// multi-view static analysis — the "other answer" to the compile-cost
// problem the paper attacks with header substitution. Where the paper
// hides a god header behind a generated lightweight header, split
// rewrites the corpus itself: it builds a multi-view symbol graph over
// each subject — (view 1) the include graph from the preprocessor's
// dependency manifests, (view 2) def-use edges from sema recording
// which translation units reference which declarations (reusing
// internal/inval's per-decl interface keys as the unit of work), and
// (view 3) symbol co-usage, declarations referenced together within one
// TU — then partitions the god header's declarations with deterministic
// seeded label propagation and emits N smaller part headers plus a
// compatibility umbrella through internal/rewrite, minimally updating
// every consumer's #include list from the def-use view.
//
// Determinism is a hard requirement: partitions are byte-identical at
// any -j, across process runs, and under declaration reorderings that
// preserve the graph, because every iteration order and tie-break keys
// on inval decl keys rather than map order or source position.
//
// Soundness over cleverness: after rewriting, every recorded name
// resolution in every TU is re-checked against the rewritten corpus; a
// single changed resolution, new parse error, or new missing include
// aborts the decomposition with the original files untouched.
package split

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/iwyu"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// ErrNotDecomposable marks headers the analysis refuses to touch: ones
// that do not lex/parse in isolation, declare nothing, or carry
// preprocessor structure (conditional blocks, mid-file defines) that
// extent-level slicing cannot preserve. Callers treat it as "skip",
// not as a failure.
var ErrNotDecomposable = errors.New("split: header is not decomposable")

// Options configures one decomposition.
type Options struct {
	// FS is the corpus tree; it is only mutated after the rewritten
	// corpus passes verification.
	FS *vfs.FS
	// SearchPaths and Sources mirror the subject's compile setup.
	SearchPaths []string
	Sources     []string
	// Header is the god header's spelled include target (the subject's
	// Header field), resolved against SearchPaths.
	Header string
	// MaxParts caps the part count via agglomerative merging of the
	// most-connected clusters (0 = uncapped).
	MaxParts int
	// Jobs bounds parallel TU analysis (<=1 = sequential). The
	// partition is byte-identical at any value.
	Jobs int
	Obs  *obs.Obs
}

// Decl is one clustered declaration unit (an inval interface key; an
// overload set is one unit).
type Decl struct {
	// Key is inval's per-decl interface key ("kind scope::name").
	Key string `json:"key"`
	// Name and Scope locate the unit ("parallel_for", "Kokkos::").
	Name  string `json:"name"`
	Scope string `json:"scope,omitempty"`
	// Part is the index of the part header holding the unit.
	Part int `json:"part"`
	// UsedBy lists the consumer files referencing the unit, sorted.
	UsedBy []string `json:"used_by,omitempty"`
}

// Part is one emitted part header.
type Part struct {
	// File is the part's path in the corpus tree; Target the spelled
	// include target consumers use for it.
	File   string `json:"file"`
	Target string `json:"target"`
	// Name is the cluster's canonical name: its smallest decl key.
	Name string `json:"name"`
	// Decls lists the member unit keys, sorted.
	Decls []string `json:"decls"`
	// Includes holds the original header include lines this part
	// claimed (its decls reference symbols they provide), verbatim.
	Includes []string `json:"includes,omitempty"`
	// DependsOn lists part indices this part includes (decl-level
	// dependencies crossing the partition).
	DependsOn []int `json:"depends_on,omitempty"`
	// Used reports whether any TU references a decl in this part (the
	// unused remainder merges into one "rest" part nobody includes).
	Used bool `json:"used"`
}

// Result describes one successful decomposition.
type Result struct {
	// HeaderPath is the god header's resolved path; Header the spelled
	// target it was found under.
	HeaderPath string `json:"header_path"`
	Header     string `json:"header"`
	Parts      []Part `json:"parts"`
	Decls      []Decl `json:"decls"`
	// Consumers maps each rewritten consumer file to the include
	// targets that replaced its god-header include, in emission order.
	Consumers map[string][]string `json:"consumers"`
	// Files holds every written file's new content (parts, umbrella,
	// consumers) — the byte-level artifact determinism tests compare.
	Files map[string]string `json:"-"`
	// Graph holds include-graph metrics for the header's own TU
	// (iwyu's view-1 summary).
	Graph []iwyu.HeaderMetrics `json:"-"`
	// PartitionJSON is the canonical partition rendering; Digest its
	// sha256. Both are byte-identical across runs and -j values.
	PartitionJSON string `json:"-"`
	Digest        string `json:"digest"`
	// ComposedTarget is the spelled target of the used part with the
	// largest preprocessed closure — the header substitution targets
	// when composing decompose + yalla ("" when no part is used).
	ComposedTarget string `json:"composed_target,omitempty"`
}

// Decompose partitions the subject's god header and rewrites the corpus
// in opts.FS. On ErrNotDecomposable or verification failure the tree is
// untouched.
func Decompose(opts Options) (*Result, error) {
	if opts.FS == nil || opts.Header == "" {
		return nil, fmt.Errorf("split: FS and Header are required")
	}
	sp := opts.Obs.Start("split.decompose")
	defer sp.End()
	sp.SetStr("header", opts.Header)

	hdrPath, err := resolveHeader(opts.FS, opts.SearchPaths, opts.Header)
	if err != nil {
		return nil, err
	}
	content, err := opts.FS.Read(hdrPath)
	if err != nil {
		return nil, err
	}

	g, err := buildGraph(opts, hdrPath, content)
	if err != nil {
		return nil, err
	}
	if len(g.units) < 2 {
		return nil, fmt.Errorf("%w: %d declaration units", ErrNotDecomposable, len(g.units))
	}
	sp.SetInt("units", int64(len(g.units)))
	sp.SetInt("tus", int64(len(g.tus)))

	clusters := cluster(g, opts.MaxParts)
	sp.SetInt("parts", int64(len(clusters)))

	res, err := emit(opts, g, clusters)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// resolveHeader finds the header file for a spelled target, probing
// each search path the way the devcycle harness does.
func resolveHeader(fs *vfs.FS, searchPaths []string, header string) (string, error) {
	for _, sp := range searchPaths {
		cand := header
		if sp != "." && sp != "" {
			cand = sp + "/" + header
		}
		cand = vfs.Clean(cand)
		if fs.Exists(cand) {
			return cand, nil
		}
	}
	if c := vfs.Clean(header); fs.Exists(c) {
		return c, nil
	}
	return "", fmt.Errorf("split: header %q not found on search paths %v", header, searchPaths)
}

// canonicalPartition renders the partition in canonical form (parts
// sorted by canonical name, decl keys sorted within each part) and
// returns the JSON plus its sha256 digest.
func canonicalPartition(header string, parts []Part) (string, string) {
	type ppart struct {
		Name  string   `json:"name"`
		Decls []string `json:"decls"`
		Used  bool     `json:"used"`
	}
	doc := struct {
		Header string  `json:"header"`
		Parts  []ppart `json:"parts"`
	}{Header: header}
	for _, p := range parts {
		doc.Parts = append(doc.Parts, ppart{Name: p.Name, Decls: p.Decls, Used: p.Used})
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic("split: canonical partition marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return string(b) + "\n", hex.EncodeToString(sum[:])
}

// swapBase replaces the basename of a spelled include target, keeping
// any directory prefix ("rapidjson/rapidjson.hpp" + "rapidjson.part0.hpp"
// -> "rapidjson/rapidjson.part0.hpp").
func swapBase(target, newBase string) string {
	if i := strings.LastIndexByte(target, '/'); i >= 0 {
		return target[:i+1] + newBase
	}
	return newBase
}

// partBase derives a part file's basename from the header's
// ("Kokkos_Core.hpp", 2 -> "Kokkos_Core.part2.hpp").
func partBase(hdrBase string, idx int) string {
	ext := ""
	stem := hdrBase
	if i := strings.LastIndexByte(hdrBase, '.'); i >= 0 {
		stem, ext = hdrBase[:i], hdrBase[i:]
	}
	return fmt.Sprintf("%s.part%d%s", stem, idx, ext)
}

func baseName(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// guardMacro sanitizes a file basename into an include-guard macro.
func guardMacro(base string) string {
	var b strings.Builder
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z':
			b.WriteByte(c - 'a' + 'A')
		case (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'):
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return "YSPLIT_" + b.String()
}
