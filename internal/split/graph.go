package split

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/astmatch"
	"repro/internal/cpp/ast"
	"repro/internal/cpp/lexer"
	"repro/internal/cpp/parser"
	"repro/internal/cpp/preprocessor"
	"repro/internal/cpp/sema"
	"repro/internal/cpp/token"
	"repro/internal/inval"
	"repro/internal/iwyu"
)

// unit is one declaration unit: every extent sharing one inval
// interface key (an overload set is a single unit and can never be
// torn across parts).
type unit struct {
	key, name, scope string
	extents          []inval.DeclExtent // source order
	deps             map[int]bool       // unit indices this unit references
	incs             map[int]bool       // header include-line indices this unit needs
	usedBy           map[string]bool    // consumer files referencing the unit
}

// incLine is one #include directive of the god header.
type incLine struct {
	text     string // verbatim line, without trailing newline
	target   string // spelled target
	resolved string // resolved path, "" when unresolvable
}

// refRec is one recorded name resolution, re-checked verbatim against
// the rewritten corpus before any file is committed.
type refRec struct {
	from string
	q    ast.QualifiedName
	want string
}

// consumerInc locates a god-header include directive inside a consumer.
type consumerInc struct {
	line   int // 1-based
	target string
	angled bool
}

// tuInfo is the per-TU slice of views 2 and 3.
type tuInfo struct {
	root string
	// ok is false when the TU did not preprocess or parse; such TUs
	// keep the compatibility umbrella and skip verification.
	ok bool
	// used maps unit index -> referencing files (def-use view).
	used map[int]map[string]bool
	// needIncs maps header include-line indices whose owned symbols
	// are referenced directly to the referencing files.
	needIncs map[int]map[string]bool
	// consumers maps each file including the god header to the
	// locations of those directives.
	consumers map[string][]consumerInc
	refs      []refRec
	missing   map[string]bool
	parseErrs int
}

// graph is the assembled multi-view symbol graph for one header.
type graph struct {
	hdrPath string
	content string
	incs    []incLine
	// firstDeclStart is where part includes are spliced into the
	// umbrella (every original include sits above it).
	firstDeclStart int
	units          []*unit
	// canon holds unit indices sorted by key: the seeded, deterministic
	// iteration order every clustering step uses.
	canon []int
	tus   []*tuInfo
	// weights is the symmetric clustering affinity: +8 per dependency
	// edge (view 1/decl structure), +2 per TU co-usage pair (view 3),
	// +1 per shared include claim (view 1).
	weights map[[2]int]int
	metrics []iwyu.HeaderMetrics
}

// buildGraph constructs all three views. Returns ErrNotDecomposable for
// headers whose shape the rewriter cannot preserve.
func buildGraph(opts Options, hdrPath, content string) (*graph, error) {
	exts, ok := inval.Extents(hdrPath, content)
	if !ok {
		return nil, fmt.Errorf("%w: does not parse in isolation", ErrNotDecomposable)
	}
	if len(exts) == 0 {
		return nil, fmt.Errorf("%w: no declarations", ErrNotDecomposable)
	}
	g := &graph{hdrPath: hdrPath, content: content, weights: map[[2]int]int{}}

	// Units: group extents by key, ordered by first appearance.
	byKey := map[string]int{}
	for _, e := range exts {
		i, seen := byKey[e.Key]
		if !seen {
			i = len(g.units)
			byKey[e.Key] = i
			g.units = append(g.units, &unit{
				key: e.Key, name: e.Name, scope: e.Scope,
				deps: map[int]bool{}, incs: map[int]bool{}, usedBy: map[string]bool{},
			})
		}
		g.units[i].extents = append(g.units[i].extents, e)
	}
	g.canon = make([]int, len(g.units))
	for i := range g.canon {
		g.canon[i] = i
	}
	sort.Slice(g.canon, func(a, b int) bool { return g.units[g.canon[a]].key < g.units[g.canon[b]].key })

	if err := g.scanStructure(); err != nil {
		return nil, err
	}

	owner, err := g.analyzeHeader(opts)
	if err != nil {
		return nil, err
	}
	g.tokenEdges()

	if err := g.analyzeTUs(opts, owner); err != nil {
		return nil, err
	}
	g.assembleWeights()
	return g, nil
}

// scanStructure validates the header's preprocessor shape: an optional
// include guard or #pragma once, #include lines strictly above the
// first declaration, and nothing else. Conditional blocks or mid-file
// macro definitions make extent slicing unsound, so they bail.
func (g *graph) scanStructure() error {
	first := len(g.content)
	last := 0
	for _, u := range g.units {
		for _, e := range u.extents {
			if e.Start < first {
				first = e.Start
			}
			if e.End > last {
				last = e.End
			}
		}
	}
	g.firstDeclStart = first

	type dline struct {
		off  int
		word string
		rest string
		text string
	}
	var dirs []dline
	off := 0
	for _, raw := range strings.SplitAfter(g.content, "\n") {
		trimmed := strings.TrimSpace(raw)
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.Fields(strings.TrimPrefix(trimmed, "#"))
			word := ""
			if len(fields) > 0 {
				word = fields[0]
			}
			dirs = append(dirs, dline{off: off, word: word,
				rest: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(trimmed[1:]), word)),
				text: strings.TrimRight(raw, "\n")})
		}
		off += len(raw)
	}
	guarded := false
	for i, d := range dirs {
		switch d.word {
		case "include":
			if d.off >= g.firstDeclStart {
				return fmt.Errorf("%w: #include below the first declaration", ErrNotDecomposable)
			}
			g.incs = append(g.incs, incLine{text: d.text, target: iwyu.IncludeSpelling(d.text)})
		case "pragma":
			if d.rest != "once" || d.off >= g.firstDeclStart {
				return fmt.Errorf("%w: unsupported #pragma %s", ErrNotDecomposable, d.rest)
			}
		case "ifndef":
			// Only as the opening half of a leading include guard.
			if i != 0 || len(dirs) < 2 || dirs[1].word != "define" || dirs[1].rest != d.rest {
				return fmt.Errorf("%w: conditional compilation", ErrNotDecomposable)
			}
			guarded = true
		case "define":
			if !(guarded && i == 1) {
				return fmt.Errorf("%w: mid-file #define", ErrNotDecomposable)
			}
		case "endif":
			if !guarded || i != len(dirs)-1 || d.off < last {
				return fmt.Errorf("%w: unexpected #endif", ErrNotDecomposable)
			}
		default:
			return fmt.Errorf("%w: directive #%s", ErrNotDecomposable, d.word)
		}
	}
	if guarded && dirs[len(dirs)-1].word != "endif" {
		return fmt.Errorf("%w: unterminated include guard", ErrNotDecomposable)
	}
	return nil
}

// unitAt maps a byte offset in the header to its containing unit index,
// or -1.
func (g *graph) unitAt(off int) int {
	for i, u := range g.units {
		for _, e := range u.extents {
			if e.Start <= off && off < e.End {
				return i
			}
		}
	}
	return -1
}

// analyzeHeader preprocesses and parses the header as its own TU root:
// view 1 (the include graph, ownership of every transitively included
// file) plus decl->include claims and AST-level decl->decl edges.
// Returns the ownership map: resolved file -> include-line index.
func (g *graph) analyzeHeader(opts Options) (map[string]int, error) {
	pp := preprocessor.New(opts.FS, opts.SearchPaths...)
	pp.Obs = opts.Obs
	ppRes, err := pp.Preprocess(g.hdrPath)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotDecomposable, err)
	}
	g.metrics = iwyu.GraphMetrics(ppRes.DirectDeps)

	directs := ppRes.DirectDeps[g.hdrPath]
	for i := range g.incs {
		g.incs[i].resolved = iwyu.ResolveDirect(directs, g.incs[i].target)
	}
	owner := map[string]int{}
	var claim func(file string, inc int)
	claim = func(file string, inc int) {
		if _, taken := owner[file]; taken {
			return
		}
		owner[file] = inc
		for _, dep := range ppRes.DirectDeps[file] {
			claim(dep, inc)
		}
	}
	for i, inc := range g.incs {
		if inc.resolved != "" {
			claim(inc.resolved, i)
		}
	}

	pr := parser.New(ppRes.Tokens)
	tu, err := pr.Parse()
	if err != nil || len(pr.Errors()) > 0 {
		return nil, fmt.Errorf("%w: header TU does not parse", ErrNotDecomposable)
	}
	table := sema.NewTable()
	table.AddUnit(tu)

	hdrID := token.InternFile(g.hdrPath)
	note := func(q ast.QualifiedName, nodeOff int) {
		from := g.unitAt(nodeOff)
		if from < 0 {
			return
		}
		r := table.Lookup(q, g.hdrPath)
		if r == nil {
			return
		}
		syms := append([]*sema.Symbol{r.Symbol}, r.AliasChain...)
		for _, s := range syms {
			if s.Decl == nil {
				continue
			}
			if s.DeclFile == g.hdrPath {
				if to := g.unitAt(int(s.Decl.Pos().Offset)); to >= 0 && to != from {
					g.units[from].deps[to] = true
				}
			} else if inc, ok := owner[s.DeclFile]; ok {
				g.units[from].incs[inc] = true
			}
		}
	}
	ast.Inspect(tu, func(n ast.Node) {
		if n.Pos().File != hdrID {
			return
		}
		off := int(n.Pos().Offset)
		walkRefs(n, func(q ast.QualifiedName) { note(q, off) })
	})
	return owner, nil
}

// walkRefs feeds every qualified name a single node mentions to f: decl
// references, declarator and member types (with template arguments
// recursed), alias targets, using-decls, and base classes.
func walkRefs(n ast.Node, f func(ast.QualifiedName)) {
	var ty func(t *ast.Type)
	ty = func(t *ast.Type) {
		if t == nil || t.Builtin {
			return
		}
		f(t.Name)
		for _, seg := range t.Name.Segments {
			for _, a := range seg.Args {
				if a.Type != nil {
					ty(a.Type)
				}
			}
		}
	}
	switch x := n.(type) {
	case *ast.DeclRefExpr:
		f(x.Name)
	case *ast.FieldDecl:
		ty(x.Type)
	case *ast.VarDecl:
		ty(x.Type)
	case *ast.AliasDecl:
		ty(x.Target)
	case *ast.FunctionDecl:
		ty(x.ReturnType)
		for _, p := range x.Params {
			ty(p.Type)
		}
	case *ast.UsingDecl:
		f(x.Name)
	case *ast.ClassDecl:
		for _, b := range x.Bases {
			f(b)
		}
	}
}

// tokenEdges adds conservative decl->decl edges from the raw token
// stream: an identifier inside unit A matching unit B's base name links
// A to B. This catches scoped spellings (Impl::Foo) and uses inside
// function bodies that the resolution walk abstains from; collisions
// only add edges, which can over-merge but never tear a dependency.
func (g *graph) tokenEdges() {
	byName := map[string][]int{}
	for i, u := range g.units {
		if u.name != "" {
			byName[u.name] = append(byName[u.name], i)
		}
	}
	lx := lexer.New(g.hdrPath, g.content)
	for {
		t := lx.Next()
		if t.Kind == token.EOF {
			break
		}
		if t.Kind != token.Identifier {
			continue
		}
		targets := byName[t.Text]
		if len(targets) == 0 {
			continue
		}
		from := g.unitAt(int(t.Pos.Offset))
		if from < 0 {
			continue
		}
		for _, to := range targets {
			if to != from {
				g.units[from].deps[to] = true
			}
		}
	}
}

// analyzeTUs runs views 2 and 3 over every TU root in parallel (bounded
// by opts.Jobs) and merges the results in deterministic root order.
func (g *graph) analyzeTUs(opts Options, owner map[string]int) error {
	roots := tuRoots(opts.Sources)
	if len(roots) == 0 {
		return fmt.Errorf("split: no translation unit roots in %v", opts.Sources)
	}
	jobs := opts.Jobs
	if jobs <= 1 {
		jobs = 1
	}
	g.tus = make([]*tuInfo, len(roots))
	var wg sync.WaitGroup
	sem := make(chan struct{}, jobs)
	for i, root := range roots {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, root string) {
			defer wg.Done()
			defer func() { <-sem }()
			g.tus[i] = g.analyzeTU(opts, root, owner)
		}(i, root)
	}
	wg.Wait()

	// Merge def-use into the units, sequentially in root order.
	for _, info := range g.tus {
		for u, files := range info.used {
			for f := range files {
				g.units[u].usedBy[f] = true
			}
		}
	}
	return nil
}

// tuRoots picks the TU roots from a subject's source list: the .cpp
// files, or the first source when none qualify.
func tuRoots(sources []string) []string {
	var roots []string
	for _, s := range sources {
		if strings.HasSuffix(s, ".cpp") || strings.HasSuffix(s, ".cc") || strings.HasSuffix(s, ".cxx") {
			roots = append(roots, s)
		}
	}
	if len(roots) == 0 && len(sources) > 0 {
		roots = sources[:1]
	}
	return roots
}

// analyzeTU extracts one TU's def-use records: which units its files
// reference (view 2), which header sub-includes its files need
// directly, where its god-header include directives sit, and every name
// resolution for the later verification pass.
func (g *graph) analyzeTU(opts Options, root string, owner map[string]int) *tuInfo {
	info := &tuInfo{
		root:      root,
		used:      map[int]map[string]bool{},
		needIncs:  map[int]map[string]bool{},
		consumers: map[string][]consumerInc{},
		missing:   map[string]bool{},
	}
	pp := preprocessor.New(opts.FS, opts.SearchPaths...)
	pp.Obs = opts.Obs
	ppRes, err := pp.Preprocess(root)
	if err != nil {
		return info
	}
	for _, m := range ppRes.MissingIncludes {
		info.missing[m] = true
	}

	// The header's closure within this TU: files whose decls the
	// umbrella used to provide.
	closure := map[string]bool{}
	var reach func(f string)
	reach = func(f string) {
		if closure[f] {
			return
		}
		closure[f] = true
		for _, d := range ppRes.DirectDeps[f] {
			reach(d)
		}
	}
	if _, seen := ppRes.DirectDeps[g.hdrPath]; seen {
		reach(g.hdrPath)
	}

	// Consumer files: anything outside the closure directly including
	// the god header.
	files := make([]string, 0, len(ppRes.DirectDeps))
	for f := range ppRes.DirectDeps {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if closure[f] {
			continue
		}
		hasHdr := false
		for _, d := range ppRes.DirectDeps[f] {
			if d == g.hdrPath {
				hasHdr = true
			}
		}
		if !hasHdr {
			continue
		}
		src, err := opts.FS.Read(f)
		if err != nil {
			continue
		}
		line := 0
		for _, raw := range strings.SplitAfter(src, "\n") {
			line++
			trimmed := strings.TrimSpace(raw)
			if !strings.HasPrefix(trimmed, "#include") {
				continue
			}
			target := iwyu.IncludeSpelling(trimmed)
			if iwyu.ResolveDirect([]string{g.hdrPath}, target) == g.hdrPath {
				info.consumers[f] = append(info.consumers[f], consumerInc{
					line:   line,
					target: target,
					angled: strings.Contains(trimmed, "<"),
				})
			}
		}
	}
	if len(info.consumers) == 0 && len(closure) == 0 {
		// The TU never sees the header; nothing to do or verify.
		info.ok = true
		return info
	}

	pr := parser.New(ppRes.Tokens)
	tu, err := pr.Parse()
	if err != nil {
		return info
	}
	info.parseErrs = len(pr.Errors())
	table := sema.NewTable()
	table.AddUnit(tu)

	closureList := make([]string, 0, len(closure))
	for f := range closure {
		closureList = append(closureList, f)
	}
	outside := astmatch.IsExpansionOutsideFiles(closureList...)

	note := func(q ast.QualifiedName, from string) {
		r := table.Lookup(q, from)
		if r == nil {
			return
		}
		info.refs = append(info.refs, refRec{from: from, q: q, want: r.Symbol.Qualified()})
		syms := append([]*sema.Symbol{r.Symbol}, r.AliasChain...)
		for _, s := range syms {
			if s.Decl == nil {
				continue
			}
			if s.DeclFile == g.hdrPath {
				if u := g.unitAt(int(s.Decl.Pos().Offset)); u >= 0 {
					if info.used[u] == nil {
						info.used[u] = map[string]bool{}
					}
					info.used[u][from] = true
				}
			} else if closure[s.DeclFile] {
				if inc, ok := owner[s.DeclFile]; ok {
					if info.needIncs[inc] == nil {
						info.needIncs[inc] = map[string]bool{}
					}
					info.needIncs[inc][from] = true
				}
			}
		}
	}
	ast.Inspect(tu, func(n ast.Node) {
		if !outside(n, nil) {
			return
		}
		from := n.Pos().FileName()
		if from == "" {
			return
		}
		walkRefs(n, func(q ast.QualifiedName) { note(q, from) })
	})
	info.ok = true
	return info
}

// assembleWeights folds the three views into one symmetric affinity
// map. All iteration is over slices or sorted indices, so the map
// contents (and everything derived from them) are order-independent.
func (g *graph) assembleWeights() {
	add := func(a, b, w int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		g.weights[[2]int{a, b}] += w
	}
	// View 1 + decl structure: dependency edges bind tightly.
	for _, i := range g.canon {
		for to := range g.units[i].deps {
			add(i, to, 8)
		}
	}
	// View 3: co-usage within one referencing file (not the whole TU —
	// two consumers pulled into the same TU must not glue their
	// otherwise-unrelated clusters together).
	for _, info := range g.tus {
		byFile := map[string][]int{}
		for u, files := range info.used {
			for f := range files {
				byFile[f] = append(byFile[f], u)
			}
		}
		for _, used := range byFile {
			sort.Ints(used)
			for a := 0; a < len(used); a++ {
				for b := a + 1; b < len(used); b++ {
					add(used[a], used[b], 2)
				}
			}
		}
	}
	// View 1: shared include claims.
	for inc := range g.incs {
		var claimers []int
		for _, i := range g.canon {
			if g.units[i].incs[inc] {
				claimers = append(claimers, i)
			}
		}
		for a := 0; a < len(claimers); a++ {
			for b := a + 1; b < len(claimers); b++ {
				add(claimers[a], claimers[b], 1)
			}
		}
	}
}
