package split_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/iwyu"
	"repro/internal/split"
	"repro/internal/vfs"
)

// synthTree builds a small corpus with a god header holding two
// weakly-coupled declaration clusters and one consumer per cluster.
func synthTree() *vfs.FS {
	fs := vfs.New()
	fs.Write("lib/suba.hpp", "struct AlphaBase { int k; };\n")
	fs.Write("lib/subb.hpp", "struct BetaBase { int k; };\n")
	fs.Write("lib/filler1.hpp", "struct Filler1 { int f; };\n")
	fs.Write("lib/filler2.hpp", "struct Filler2 { int f; };\n")
	fs.Write("lib/god.hpp", `#ifndef GOD_HPP
#define GOD_HPP
#include "suba.hpp"
#include "subb.hpp"
#include "filler1.hpp"
#include "filler2.hpp"
namespace gx {
struct Alpha { AlphaBase base; };
inline int alpha_fn(int v) { return v + 1; }
struct Beta { BetaBase base; };
inline int beta_fn(int v) { return v + 2; }
}
#endif
`)
	fs.Write("src/usea.hpp", `#include <god.hpp>
inline int use_alpha() {
  gx::Alpha a;
  return gx::alpha_fn(40);
}
`)
	fs.Write("src/useb.hpp", `#include <god.hpp>
inline int use_beta() {
  gx::Beta b;
  return gx::beta_fn(50);
}
`)
	fs.Write("src/main.cpp", `#include "usea.hpp"
#include "useb.hpp"
int main() {
  return use_alpha() + use_beta();
}
`)
	return fs
}

func synthOptions(fs *vfs.FS) split.Options {
	return split.Options{
		FS:          fs,
		SearchPaths: []string{"lib", "src"},
		Sources:     []string{"src/main.cpp", "src/usea.hpp", "src/useb.hpp"},
		Header:      "god.hpp",
		MaxParts:    4,
		Jobs:        2,
	}
}

func TestDecomposeSynthetic(t *testing.T) {
	fs := synthTree()
	res, err := split.Decompose(synthOptions(fs))
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(res.Parts) != 2 {
		t.Fatalf("parts = %d, want 2: %+v", len(res.Parts), res.Parts)
	}
	// Parts order by canonical name: the alpha cluster ("func
	// gx::alpha_fn") sorts before the beta cluster.
	if got := res.Parts[0].Decls; len(got) != 2 || got[0] != "func gx::alpha_fn" || got[1] != "struct gx::Alpha" {
		t.Errorf("part 0 decls = %v", got)
	}
	if got := res.Parts[1].Decls; len(got) != 2 || got[0] != "func gx::beta_fn" || got[1] != "struct gx::Beta" {
		t.Errorf("part 1 decls = %v", got)
	}
	// Each part claims exactly the sub-include its decls depend on; the
	// fillers stay umbrella-only.
	if got := res.Parts[0].Includes; len(got) != 1 || !strings.Contains(got[0], "suba.hpp") {
		t.Errorf("part 0 includes = %v", got)
	}
	if got := res.Parts[1].Includes; len(got) != 1 || !strings.Contains(got[0], "subb.hpp") {
		t.Errorf("part 1 includes = %v", got)
	}
	// Consumers switch to exactly the parts they use, keeping their
	// angled spelling.
	if got := res.Consumers["src/usea.hpp"]; len(got) != 1 || got[0] != "god.part0.hpp" {
		t.Errorf("usea consumers = %v", got)
	}
	if got := res.Consumers["src/useb.hpp"]; len(got) != 1 || got[0] != "god.part1.hpp" {
		t.Errorf("useb consumers = %v", got)
	}
	usea, _ := fs.Read("src/usea.hpp")
	if !strings.Contains(usea, "#include <god.part0.hpp>") || strings.Contains(usea, "#include <god.hpp>") {
		t.Errorf("usea.hpp not rewritten:\n%s", usea)
	}
	// The part files exist next to the header and re-wrap the moved
	// declarations in their namespace.
	p0, err := fs.Read("lib/god.part0.hpp")
	if err != nil {
		t.Fatalf("part 0 missing: %v", err)
	}
	for _, want := range []string{"namespace gx {", "struct Alpha", "alpha_fn", "} // namespace gx"} {
		if !strings.Contains(p0, want) {
			t.Errorf("part 0 lacks %q:\n%s", want, p0)
		}
	}
	if strings.Contains(p0, "Beta") {
		t.Errorf("part 0 leaked beta decls:\n%s", p0)
	}
	// The umbrella still provides everything (compatibility for
	// unrewritten consumers): it now includes every part.
	umb, _ := fs.Read("lib/god.hpp")
	for _, want := range []string{`#include "god.part0.hpp"`, `#include "god.part1.hpp"`, `#include "filler1.hpp"`} {
		if !strings.Contains(umb, want) {
			t.Errorf("umbrella lacks %q:\n%s", want, umb)
		}
	}
	if strings.Contains(umb, "struct Alpha") {
		t.Errorf("umbrella still holds decls:\n%s", umb)
	}
	if res.ComposedTarget == "" {
		t.Error("no composed target")
	}
	if res.Digest == "" || res.PartitionJSON == "" {
		t.Error("missing partition digest/JSON")
	}
}

// TestDecomposeExecEquivalent interprets the synthetic program before
// and after decomposition and demands identical observable behavior.
func TestDecomposeExecEquivalent(t *testing.T) {
	orig := synthTree()
	fs := orig.Clone()
	if _, err := split.Decompose(synthOptions(fs)); err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	paths := []string{"lib", "src"}
	files := []string{"src/main.cpp"}
	a, err := difftest.Interpret(orig, paths, files, 0)
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	b, err := difftest.Interpret(fs, paths, files, 0)
	if err != nil {
		t.Fatalf("decomposed: %v", err)
	}
	if a.Ret != b.Ret || len(a.Events) != len(b.Events) {
		t.Fatalf("behavior diverged: ret %d vs %d, %d vs %d events", a.Ret, b.Ret, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d: %q vs %q", i, a.Events[i], b.Events[i])
		}
	}
}

// TestNotDecomposable checks the refusal paths leave the tree untouched.
func TestNotDecomposable(t *testing.T) {
	cases := []struct {
		name, header string
	}{
		{"conditional", "#ifndef G\n#define G\n#ifdef FAST\nstruct A { int x; };\n#endif\nstruct B { int y; };\n#endif\n"},
		{"mid-file define", "#define MODE 3\nstruct A { int x; };\nstruct B { int y; };\n"},
		{"single decl", "struct A { int x; };\n"},
		{"include below decl", "struct A { int x; };\n#include \"suba.hpp\"\nstruct B { int y; };\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := synthTree()
			fs.Write("lib/god.hpp", tc.header)
			before, _ := fs.ContentHash("lib/god.hpp")
			_, err := split.Decompose(synthOptions(fs))
			if !errors.Is(err, split.ErrNotDecomposable) {
				t.Fatalf("err = %v, want ErrNotDecomposable", err)
			}
			if after, _ := fs.ContentHash("lib/god.hpp"); after != before {
				t.Error("refused decomposition mutated the tree")
			}
			if fs.Exists("lib/god.part0.hpp") {
				t.Error("refused decomposition left a part file behind")
			}
		})
	}
}

// TestDecomposeCorpus runs every subject end-to-end: decompose, then
// exec-compare original vs decomposed under the reference interpreter,
// re-run yallacheck against the composed target with no new findings,
// and push the decomposed main TU through iwyu.
func TestDecomposeCorpus(t *testing.T) {
	for _, s := range corpus.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			fs := s.FS.Clone()
			res, err := split.Decompose(split.Options{
				FS: fs, SearchPaths: s.SearchPaths, Sources: s.Sources,
				Header: s.Header, MaxParts: 4, Jobs: 4,
			})
			if err != nil {
				t.Fatalf("Decompose: %v", err)
			}
			if len(res.Graph) == 0 {
				t.Error("no include-graph metrics recorded")
			}

			// Exec equivalence (the interpreter covers a subset; both
			// variants failing identically is an abstain, a one-sided
			// failure is a bug).
			a, errA := difftest.Interpret(s.FS.Overlay(), s.SearchPaths, s.Sources, 0)
			b, errB := difftest.Interpret(fs, s.SearchPaths, s.Sources, 0)
			switch {
			case errA == nil && errB != nil:
				t.Fatalf("decomposed program stopped interpreting: %v", errB)
			case errA != nil && errB == nil:
				t.Fatalf("original uninterpretable (%v) but decomposed ran", errA)
			case errA == nil:
				if a.Ret != b.Ret || len(a.Events) != len(b.Events) {
					t.Fatalf("behavior diverged: ret %d vs %d, %d vs %d events",
						a.Ret, b.Ret, len(a.Events), len(b.Events))
				}
				for i := range a.Events {
					if a.Events[i] != b.Events[i] {
						t.Fatalf("event %d diverged: %q vs %q", i, a.Events[i], b.Events[i])
					}
				}
			}

			// yallacheck on the rewritten corpus (substituting the
			// composed target) must introduce no new findings over the
			// original substitution check.
			origCheck, err := check.Run(check.Options{
				FS: s.FS.Overlay(), SearchPaths: s.SearchPaths,
				Sources: s.Sources, Header: s.Header,
			})
			if err != nil {
				t.Fatalf("check original: %v", err)
			}
			if res.ComposedTarget == "" {
				t.Fatal("no composed target for a corpus subject")
			}
			decCheck, err := check.Run(check.Options{
				FS: fs.Overlay(), SearchPaths: s.SearchPaths,
				Sources: s.Sources, Header: res.ComposedTarget,
			})
			if err != nil {
				t.Fatalf("check decomposed: %v", err)
			}
			if len(decCheck.Diagnostics) > len(origCheck.Diagnostics) {
				t.Fatalf("decomposition introduced findings: %d -> %d (first: %v)",
					len(origCheck.Diagnostics), len(decCheck.Diagnostics), decCheck.Diagnostics[0])
			}

			// iwyu still flows over the rewritten tree.
			if _, err := iwyu.Analyze(iwyu.Options{
				FS: fs.Overlay(), SearchPaths: s.SearchPaths, Source: s.MainFile,
			}); err != nil {
				t.Fatalf("iwyu on decomposed tree: %v", err)
			}
		})
	}
}
