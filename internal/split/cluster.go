package split

import "sort"

// cluster partitions the units: seeded label propagation over the
// multi-view affinity, an agglomerative merge down to maxParts, a
// cycle merge so the part-include graph is a DAG, and a rest merge
// folding every fully-unused cluster into one remainder part. The
// returned clusters are ordered by canonical name (smallest member
// key) and each cluster's units are listed in key order.
//
// Every step iterates units in key order and breaks ties on keys, so
// the partition is a pure function of the graph: byte-identical at any
// -j, across processes, and under decl reorderings preserving the
// graph.
func cluster(g *graph, maxParts int) [][]int {
	labels := propagate(g)

	// Group by label, clusters keyed by their canonical name.
	byLabel := map[string][]int{}
	for _, i := range g.canon {
		byLabel[labels[i]] = append(byLabel[labels[i]], i)
	}
	var clusters [][]int
	for _, i := range g.canon {
		if members, ok := byLabel[labels[i]]; ok {
			clusters = append(clusters, members)
			delete(byLabel, labels[i])
		}
	}

	clusters = mergeToMax(g, clusters, maxParts)
	clusters = mergeCycles(g, clusters)
	clusters = mergeRest(g, clusters)

	sort.Slice(clusters, func(a, b int) bool {
		return g.units[clusters[a][0]].key < g.units[clusters[b][0]].key
	})
	return clusters
}

// propagate runs seeded asynchronous label propagation: labels start as
// unit keys, and each round every unit (in key order) adopts the label
// with the highest total neighbor affinity. Ties go to the
// lexicographically smallest label; a unit keeps its label unless a
// strictly better (or tie-smaller) one appears. Converges in a handful
// of rounds on these graphs; 16 bounds pathological oscillation.
func propagate(g *graph) []string {
	labels := make([]string, len(g.units))
	for i, u := range g.units {
		labels[i] = u.key
	}
	// Symmetric adjacency from the affinity map.
	adj := make([]map[int]int, len(g.units))
	for pair, w := range g.weights {
		a, b := pair[0], pair[1]
		if adj[a] == nil {
			adj[a] = map[int]int{}
		}
		if adj[b] == nil {
			adj[b] = map[int]int{}
		}
		adj[a][b] += w
		adj[b][a] += w
	}
	for round := 0; round < 16; round++ {
		changed := false
		for _, i := range g.canon {
			if len(adj[i]) == 0 {
				continue
			}
			score := map[string]int{}
			for n, w := range adj[i] {
				score[labels[n]] += w
			}
			cur := labels[i]
			best, bestW := cur, score[cur]
			for l, w := range score {
				if w > bestW || (w == bestW && l < best) {
					best, bestW = l, w
				}
			}
			if best != cur {
				labels[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return labels
}

// canonName is a cluster's identity: its smallest member key.
func canonName(g *graph, cl []int) string {
	name := g.units[cl[0]].key
	for _, i := range cl[1:] {
		if g.units[i].key < name {
			name = g.units[i].key
		}
	}
	return name
}

// interWeight sums the affinity between two clusters.
func interWeight(g *graph, a, b []int) int {
	w := 0
	for _, i := range a {
		for _, j := range b {
			x, y := i, j
			if x > y {
				x, y = y, x
			}
			w += g.weights[[2]int{x, y}]
		}
	}
	return w
}

// mergeTwo joins clusters p and q (q into p), keeping key order.
func mergeTwo(g *graph, clusters [][]int, p, q int) [][]int {
	merged := append(append([]int{}, clusters[p]...), clusters[q]...)
	sort.Slice(merged, func(a, b int) bool { return g.units[merged[a]].key < g.units[merged[b]].key })
	out := make([][]int, 0, len(clusters)-1)
	for i, cl := range clusters {
		if i == q {
			continue
		}
		if i == p {
			out = append(out, merged)
			continue
		}
		out = append(out, cl)
	}
	return out
}

// mergeToMax agglomeratively merges the most-affine cluster pair until
// the count fits maxParts. Ties (including the zero-affinity case)
// break on the lexicographically smallest canonical-name pair.
func mergeToMax(g *graph, clusters [][]int, maxParts int) [][]int {
	if maxParts <= 0 {
		return clusters
	}
	for len(clusters) > maxParts {
		bestP, bestQ, bestW := -1, -1, -1
		for p := 0; p < len(clusters); p++ {
			for q := p + 1; q < len(clusters); q++ {
				w := interWeight(g, clusters[p], clusters[q])
				if w > bestW {
					bestP, bestQ, bestW = p, q, w
					continue
				}
				if w == bestW && better(g, clusters, p, q, bestP, bestQ) {
					bestP, bestQ = p, q
				}
			}
		}
		clusters = mergeTwo(g, clusters, bestP, bestQ)
	}
	return clusters
}

// better orders candidate merge pairs by canonical names.
func better(g *graph, clusters [][]int, p, q, bp, bq int) bool {
	pn, qn := canonName(g, clusters[p]), canonName(g, clusters[q])
	bpn, bqn := canonName(g, clusters[bp]), canonName(g, clusters[bq])
	if pn != bpn {
		return pn < bpn
	}
	return qn < bqn
}

// mergeCycles collapses dependency cycles between clusters so the
// emitted part-include graph is acyclic. Clusters are merged greedily:
// while some cluster can reach itself through inter-cluster dependency
// edges, merge the whole cycle.
func mergeCycles(g *graph, clusters [][]int) [][]int {
	for {
		cyc := findCycle(g, clusters)
		if cyc == nil {
			return clusters
		}
		// Merge every cluster on the cycle into the one with the
		// smallest canonical name.
		sort.Slice(cyc, func(a, b int) bool {
			return canonName(g, clusters[cyc[a]]) < canonName(g, clusters[cyc[b]])
		})
		for len(cyc) > 1 {
			p, q := cyc[0], cyc[len(cyc)-1]
			if p > q {
				p, q = q, p
			}
			clusters = mergeTwo(g, clusters, p, q)
			cyc = findCycle(g, clusters)
			if cyc == nil {
				return clusters
			}
			sort.Slice(cyc, func(a, b int) bool {
				return canonName(g, clusters[cyc[a]]) < canonName(g, clusters[cyc[b]])
			})
		}
	}
}

// clusterDeps builds the inter-cluster dependency adjacency.
func clusterDeps(g *graph, clusters [][]int) [][]int {
	clusterOf := map[int]int{}
	for c, cl := range clusters {
		for _, u := range cl {
			clusterOf[u] = c
		}
	}
	adj := make([][]int, len(clusters))
	for c, cl := range clusters {
		seen := map[int]bool{}
		for _, u := range cl {
			deps := make([]int, 0, len(g.units[u].deps))
			for d := range g.units[u].deps {
				deps = append(deps, d)
			}
			sort.Ints(deps)
			for _, d := range deps {
				if dc := clusterOf[d]; dc != c && !seen[dc] {
					seen[dc] = true
					adj[c] = append(adj[c], dc)
				}
			}
		}
	}
	return adj
}

// findCycle returns the clusters on some dependency cycle (smallest
// entry point first), or nil when the graph is a DAG.
func findCycle(g *graph, clusters [][]int) []int {
	adj := clusterDeps(g, clusters)
	state := make([]int, len(clusters)) // 0 unvisited, 1 on stack, 2 done
	var stack []int
	var cyc []int
	var dfs func(c int) bool
	dfs = func(c int) bool {
		state[c] = 1
		stack = append(stack, c)
		for _, d := range adj[c] {
			switch state[d] {
			case 0:
				if dfs(d) {
					return true
				}
			case 1:
				// Cycle: everything on the stack from d onward.
				for i := len(stack) - 1; i >= 0; i-- {
					cyc = append(cyc, stack[i])
					if stack[i] == d {
						return true
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		state[c] = 2
		return false
	}
	for c := range clusters {
		if state[c] == 0 && dfs(c) {
			return cyc
		}
	}
	return nil
}

// usedClosure marks every unit referenced by a TU plus everything those
// units depend on transitively: the set that must remain reachable
// through part includes.
func usedClosure(g *graph) map[int]bool {
	closed := map[int]bool{}
	var visit func(u int)
	visit = func(u int) {
		if closed[u] {
			return
		}
		closed[u] = true
		deps := make([]int, 0, len(g.units[u].deps))
		for d := range g.units[u].deps {
			deps = append(deps, d)
		}
		sort.Ints(deps)
		for _, d := range deps {
			visit(d)
		}
	}
	for _, i := range g.canon {
		if len(g.units[i].usedBy) > 0 {
			visit(i)
		}
	}
	return closed
}

// mergeRest folds every cluster with no unit in the used closure into a
// single remainder cluster: consumers never include it, so splitting
// the unused surface further buys nothing and inflates the part list.
func mergeRest(g *graph, clusters [][]int) [][]int {
	used := usedClosure(g)
	isUsed := func(cl []int) bool {
		for _, u := range cl {
			if used[u] {
				return true
			}
		}
		return false
	}
	var rest []int
	var out [][]int
	for _, cl := range clusters {
		if isUsed(cl) {
			out = append(out, cl)
		} else {
			rest = append(rest, cl...)
		}
	}
	if len(rest) > 0 {
		sort.Slice(rest, func(a, b int) bool { return g.units[rest[a]].key < g.units[rest[b]].key })
		out = append(out, rest)
	}
	return out
}
