package astmatch

import (
	"testing"

	"repro/internal/cpp/ast"
	"repro/internal/cpp/lexer"
	"repro/internal/cpp/parser"
)

func parse(t *testing.T, file, src string) *ast.TranslationUnit {
	t.Helper()
	toks, err := lexer.Tokenize(file, src)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := parser.New(toks).Parse()
	if err != nil {
		t.Fatal(err)
	}
	return tu
}

const sample = `
namespace Kokkos {
  template<class T, class L> class View { public: T& operator()(int, int); };
  template<class P, class F> void parallel_for(P p, F f);
}
struct add_y {
  int y;
  Kokkos::View<int**, LayoutRight> x;
  void operator()(int &m);
};
void add_y::operator()(int &m) {
  int j = m;
  Kokkos::parallel_for(Kokkos::TeamThreadRange(m, 5), [&](int i) { x(j, i) += y; });
}`

func TestCXXRecordDeclHasName(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	ms := Find(tu, CXXRecordDecl(HasName("add_y")))
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	if ms[0].Node.(*ast.ClassDecl).Name != "add_y" {
		t.Fatal("wrong node")
	}
}

func TestIsDefinitionAndTemplate(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	defs := Find(tu, CXXRecordDecl(IsDefinition()))
	if len(defs) != 2 { // View and add_y
		t.Fatalf("defs = %d", len(defs))
	}
	tmpls := Find(tu, CXXRecordDecl(IsTemplate()))
	if len(tmpls) != 1 || tmpls[0].Node.(*ast.ClassDecl).Name != "View" {
		t.Fatalf("templates = %d", len(tmpls))
	}
}

func TestCallExprCallee(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	ms := Find(tu, CallExpr(Callee(DeclRefExpr(HasName("Kokkos::parallel_for")))))
	if len(ms) != 1 {
		t.Fatalf("parallel_for calls = %d", len(ms))
	}
}

func TestHasAnyArgumentLambda(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	ms := Find(tu, CallExpr(HasAnyArgument(LambdaExpr())))
	if len(ms) != 1 {
		t.Fatalf("calls with lambda arg = %d", len(ms))
	}
}

func TestBind(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	ms := Find(tu, CallExpr(HasAnyArgument(Bind("lam", LambdaExpr()))))
	if len(ms) != 1 {
		t.Fatal("no match")
	}
	if _, ok := ms[0].Bindings["lam"].(*ast.LambdaExpr); !ok {
		t.Fatalf("binding = %T", ms[0].Bindings["lam"])
	}
}

func TestHasDescendant(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	// Functions containing a lambda somewhere.
	ms := Find(tu, FunctionDecl(HasDescendant(LambdaExpr())))
	if len(ms) != 1 {
		t.Fatalf("functions with lambdas = %d", len(ms))
	}
	f := ms[0].Node.(*ast.FunctionDecl)
	if f.QualifierName.String() != "add_y" {
		t.Fatalf("wrong function: %s", f.Name)
	}
}

func TestAnyOfNotAllOf(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	ms := Find(tu, CXXRecordDecl(AnyOf(HasName("View"), HasName("add_y"))))
	if len(ms) != 2 {
		t.Fatalf("AnyOf = %d", len(ms))
	}
	ms = Find(tu, CXXRecordDecl(AllOf(HasName("View"), IsTemplate())))
	if len(ms) != 1 {
		t.Fatalf("AllOf = %d", len(ms))
	}
	ms = Find(tu, CXXRecordDecl(Not(HasName("View"))))
	if len(ms) != 1 || ms[0].Node.(*ast.ClassDecl).Name != "add_y" {
		t.Fatalf("Not = %d", len(ms))
	}
}

func TestIsExpansionInFile(t *testing.T) {
	header := parse(t, "lib.hpp", "namespace K { class A {}; }")
	source := parse(t, "main.cpp", "K::A a;")
	all := &ast.TranslationUnit{Decls: append(header.Decls, source.Decls...)}
	ms := Find(all, CXXRecordDecl(IsExpansionInFile("lib.hpp")))
	if len(ms) != 1 {
		t.Fatalf("in lib.hpp = %d", len(ms))
	}
	ms = Find(all, VarDecl(IsExpansionInFile("main.cpp")))
	if len(ms) != 1 {
		t.Fatalf("vars in main.cpp = %d", len(ms))
	}
}

func TestMemberExprOnBase(t *testing.T) {
	tu := parse(t, "s.cpp", "void f(W& w) { int r = w.rank(); }")
	ms := Find(tu, MemberExpr(HasName("rank"), OnBase(DeclRefExpr(HasName("w")))))
	if len(ms) != 1 {
		t.Fatalf("member exprs = %d", len(ms))
	}
}

func TestFieldAndAliasAndEnum(t *testing.T) {
	tu := parse(t, "s.cpp", `
using sp_t = Kokkos::OpenMP;
enum class E { A };
struct S { int field1; double field2; };`)
	if ms := Find(tu, TypeAliasDecl(HasName("sp_t"))); len(ms) != 1 {
		t.Fatalf("aliases = %d", len(ms))
	}
	if ms := Find(tu, EnumDecl(HasName("E"))); len(ms) != 1 {
		t.Fatalf("enums = %d", len(ms))
	}
	if ms := Find(tu, FieldDecl()); len(ms) != 2 {
		t.Fatalf("fields = %d", len(ms))
	}
	if ms := Find(tu, FieldDecl(HasType(func(ty *ast.Type) bool { return ty.String() == "double" }))); len(ms) != 1 {
		t.Fatalf("double fields = %d", len(ms))
	}
}

func TestCXXMethodDecl(t *testing.T) {
	tu := parse(t, "s.cpp", sample)
	ms := Find(tu, CXXMethodDecl(HasName("operator()")))
	// in-class declaration in View, in add_y, and out-of-line definition
	if len(ms) != 3 {
		t.Fatalf("methods = %d", len(ms))
	}
}

// TestCombinatorTable runs every combinator against one fixture so a
// regression in any of them shows up as a named subtest failure. The
// expectations count matches over the whole tree (Find visits every
// node, so nested hits count individually).
func TestCombinatorTable(t *testing.T) {
	const src = `
namespace lib {
  class Mat { public: Mat(int r); int rows() const; int rows_; };
  enum Flag { F_A = 1, F_B = 2 };
  using Img = Mat;
  template <class F> void each(F f, int n);
}
void use(lib::Mat& m) {
  int r = m.rows();
  lib::each([&](int i) { m.rows(); }, r);
  lib::Mat copy(r);
}`
	tu := parse(t, "t.cpp", src)
	cases := []struct {
		name string
		m    Matcher
		want int
	}{
		{"CXXRecordDecl", CXXRecordDecl(), 1},
		{"CXXRecordDecl+HasName", CXXRecordDecl(HasName("Mat")), 1},
		{"CXXRecordDecl+HasName-miss", CXXRecordDecl(HasName("Vec")), 0},
		{"CXXRecordDecl+IsDefinition", CXXRecordDecl(IsDefinition()), 1},
		{"CXXRecordDecl+IsTemplate", CXXRecordDecl(IsTemplate()), 0},
		{"FunctionDecl", FunctionDecl(), 4}, // Mat::Mat, rows, each, use
		{"FunctionDecl+IsTemplate", FunctionDecl(IsTemplate()), 1},
		{"CXXMethodDecl", CXXMethodDecl(), 2},
		{"FieldDecl", FieldDecl(), 1},
		{"VarDecl", VarDecl(HasName("copy")), 1},
		{"VarDecl+HasType", VarDecl(HasType(func(ty *ast.Type) bool { return ty.String() == "int" })), 1},
		{"EnumDecl", EnumDecl(HasName("Flag")), 1},
		{"TypeAliasDecl", TypeAliasDecl(HasName("Img")), 1},
		{"CallExpr", CallExpr(), 3}, // m.rows(), lib::each(...), m.rows() in lambda
		{"CallExpr+Callee", CallExpr(Callee(DeclRefExpr(HasName("lib::each")))), 1},
		{"CallExpr+HasArgument", CallExpr(HasArgument(0, LambdaExpr())), 1},
		{"CallExpr+HasAnyArgument", CallExpr(HasAnyArgument(DeclRefExpr(HasName("r")))), 1},
		{"MemberExpr", MemberExpr(HasName("rows")), 2},
		{"MemberExpr+OnBase", MemberExpr(OnBase(DeclRefExpr(HasName("m")))), 2},
		{"LambdaExpr", LambdaExpr(), 1},
		{"HasDescendant", FunctionDecl(HasDescendant(LambdaExpr())), 1},
		{"AnyOf", CXXRecordDecl(AnyOf(HasName("Mat"), HasName("Vec"))), 1},
		{"AllOf", CXXRecordDecl(AllOf(HasName("Mat"), IsDefinition())), 1},
		{"Not", CXXMethodDecl(Not(HasName("rows"))), 1}, // the constructor
		{"IsExpansionInFile", CXXRecordDecl(IsExpansionInFile("t.cpp")), 1},
		{"IsExpansionInFile-miss", CXXRecordDecl(IsExpansionInFile("u.cpp")), 0},
		{"Bind", CallExpr(HasAnyArgument(Bind("lam", LambdaExpr()))), 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := len(Find(tu, tc.m)); got != tc.want {
				t.Errorf("matches = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestNilAndEmptyAST pins down the degenerate inputs: a nil root and an
// empty translation unit must yield zero matches (never panic), for
// every node-kind combinator.
func TestNilAndEmptyAST(t *testing.T) {
	kinds := map[string]Matcher{
		"CXXRecordDecl": CXXRecordDecl(),
		"FunctionDecl":  FunctionDecl(),
		"CXXMethodDecl": CXXMethodDecl(),
		"FieldDecl":     FieldDecl(),
		"VarDecl":       VarDecl(),
		"CallExpr":      CallExpr(),
		"MemberExpr":    MemberExpr(),
		"LambdaExpr":    LambdaExpr(),
		"DeclRefExpr":   DeclRefExpr(),
		"TypeAliasDecl": TypeAliasDecl(),
		"EnumDecl":      EnumDecl(),
	}
	empty := &ast.TranslationUnit{}
	for name, m := range kinds {
		if ms := Find(nil, m); len(ms) != 0 {
			t.Errorf("%s on nil root: %d matches", name, len(ms))
		}
		if ms := Find(empty, m); len(ms) != 0 {
			t.Errorf("%s on empty TU: %d matches", name, len(ms))
		}
	}
	// Structural combinators applied to the wrong node kind (the bare
	// TU) must be false, and Not must therefore match it.
	b := Bindings{}
	for name, m := range map[string]Matcher{
		"Callee":         Callee(DeclRefExpr()),
		"HasArgument":    HasArgument(0, DeclRefExpr()),
		"HasAnyArgument": HasAnyArgument(DeclRefExpr()),
		"OnBase":         OnBase(DeclRefExpr()),
		"HasDescendant":  HasDescendant(DeclRefExpr()),
		"HasName":        HasName("x"),
		"IsDefinition":   IsDefinition(),
		"IsTemplate":     IsTemplate(),
		"HasType":        HasType(func(*ast.Type) bool { return true }),
		"AnyOf-empty":    AnyOf(),
	} {
		if m(empty, b) {
			t.Errorf("%s matched an empty TranslationUnit", name)
		}
	}
	if !AllOf()(empty, b) {
		t.Error("empty AllOf must match (vacuous truth)")
	}
	if !Not(CallExpr())(empty, b) {
		t.Error("Not(CallExpr) must match a non-call node")
	}
}

func TestHasArgumentIndex(t *testing.T) {
	tu := parse(t, "s.cpp", "void f() { g(1, h(2)); }")
	ms := Find(tu, CallExpr(Callee(DeclRefExpr(HasName("g"))), HasArgument(1, CallExpr())))
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	ms = Find(tu, CallExpr(HasArgument(5, CallExpr())))
	if len(ms) != 0 {
		t.Fatalf("out-of-range arg matched: %d", len(ms))
	}
}
