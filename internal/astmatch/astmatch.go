// Package astmatch provides a declarative AST-matcher combinator library
// in the style of clang's ASTMatchers, which the paper's implementation
// uses to locate the nodes in Table 1 ("It then uses Clang's AST Matcher
// library to match the nodes representing the symbols", §4.1). Matchers
// compose into predicates and a MatchFinder runs them over a tree,
// reporting bound nodes.
package astmatch

import (
	"repro/internal/cpp/ast"
	"repro/internal/cpp/token"
)

// Matcher is a predicate over AST nodes. It may record named bindings
// into the result set via the context.
type Matcher func(n ast.Node, b Bindings) bool

// Bindings maps binding names to nodes captured during a match.
type Bindings map[string]ast.Node

// clone copies bindings so sibling match attempts don't interfere.
func (b Bindings) clone() Bindings {
	out := make(Bindings, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Match is one successful match: the root node plus captured bindings.
type Match struct {
	Node     ast.Node
	Bindings Bindings
}

// Find runs the matcher over the tree and returns every match.
func Find(root ast.Node, m Matcher) []Match {
	var out []Match
	ast.Inspect(root, func(n ast.Node) {
		b := Bindings{}
		if m(n, b) {
			out = append(out, Match{Node: n, Bindings: b})
		}
	})
	return out
}

// Bind wraps a matcher so the matched node is recorded under name.
func Bind(name string, m Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if m(n, b) {
			b[name] = n
			return true
		}
		return false
	}
}

// ------------------------------------------------------------ node kinds

// CXXRecordDecl matches class/struct/union declarations.
func CXXRecordDecl(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.ClassDecl); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// FunctionDecl matches function declarations (free or member).
func FunctionDecl(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.FunctionDecl); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// CXXMethodDecl matches member functions.
func CXXMethodDecl(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		f, ok := n.(*ast.FunctionDecl)
		if !ok || !f.IsMethod() {
			return false
		}
		return allOf(n, b, inner)
	}
}

// FieldDecl matches data members.
func FieldDecl(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.FieldDecl); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// VarDecl matches variable declarations.
func VarDecl(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.VarDecl); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// CallExpr matches call expressions.
func CallExpr(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.CallExpr); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// MemberExpr matches member accesses.
func MemberExpr(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.MemberExpr); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// LambdaExpr matches lambda expressions.
func LambdaExpr(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.LambdaExpr); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// DeclRefExpr matches name references.
func DeclRefExpr(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.DeclRefExpr); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// TypeAliasDecl matches using/typedef aliases.
func TypeAliasDecl(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.AliasDecl); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// EnumDecl matches enum declarations.
func EnumDecl(inner ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		if _, ok := n.(*ast.EnumDecl); !ok {
			return false
		}
		return allOf(n, b, inner)
	}
}

// ------------------------------------------------------------ narrowing

func allOf(n ast.Node, b Bindings, ms []Matcher) bool {
	for _, m := range ms {
		if !m(n, b) {
			return false
		}
	}
	return true
}

// HasName narrows to declarations with the given unqualified name, or to
// DeclRefExprs whose (plain) name matches.
func HasName(name string) Matcher {
	return func(n ast.Node, b Bindings) bool {
		switch x := n.(type) {
		case *ast.ClassDecl:
			return x.Name == name
		case *ast.FunctionDecl:
			return x.Name == name
		case *ast.FieldDecl:
			return x.Name == name
		case *ast.VarDecl:
			return x.Name == name
		case *ast.AliasDecl:
			return x.Name == name
		case *ast.EnumDecl:
			return x.Name == name
		case *ast.NamespaceDecl:
			return x.Name == name
		case *ast.DeclRefExpr:
			return x.Name.Plain() == name || x.Name.Last().Name == name
		case *ast.MemberExpr:
			return x.Member == name
		}
		return false
	}
}

// IsDefinition narrows to definitions.
func IsDefinition() Matcher {
	return func(n ast.Node, b Bindings) bool {
		switch x := n.(type) {
		case *ast.ClassDecl:
			return x.IsDefinition
		case *ast.FunctionDecl:
			return x.IsDefinition
		}
		return false
	}
}

// IsTemplate narrows to templated declarations.
func IsTemplate() Matcher {
	return func(n ast.Node, b Bindings) bool {
		switch x := n.(type) {
		case *ast.ClassDecl:
			return x.IsTemplate()
		case *ast.FunctionDecl:
			return x.IsTemplate()
		}
		return false
	}
}

// IsExpansionInFile narrows to nodes whose position is in file — the
// analogue of clang's isExpansionInFileMatching, which YALLA uses to
// separate header-declared symbols from source-file usages.
func IsExpansionInFile(file string) Matcher {
	fid := token.InternFile(file)
	return func(n ast.Node, b Bindings) bool {
		return n.Pos().File == fid
	}
}

// IsExpansionOutsideFiles narrows to nodes positioned in none of the
// given files — the complement of IsExpansionInFile over a file set,
// which the header splitter uses to separate consumer-side usages from
// declarations inside the god header's own include closure.
func IsExpansionOutsideFiles(files ...string) Matcher {
	ids := make(map[token.FileID]bool, len(files))
	for _, f := range files {
		ids[token.InternFile(f)] = true
	}
	return func(n ast.Node, b Bindings) bool {
		return !ids[n.Pos().File]
	}
}

// Callee applies a matcher to a call's callee expression.
func Callee(m Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		return m(c.Callee, b)
	}
}

// HasArgument applies a matcher to the i-th call argument.
func HasArgument(i int, m Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || i >= len(c.Args) {
			return false
		}
		return m(c.Args[i], b)
	}
}

// HasAnyArgument matches calls where any argument satisfies m.
func HasAnyArgument(m Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		for _, a := range c.Args {
			if m(a, b) {
				return true
			}
		}
		return false
	}
}

// OnBase applies a matcher to a member expression's base.
func OnBase(m Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		me, ok := n.(*ast.MemberExpr)
		if !ok {
			return false
		}
		return m(me.Base, b)
	}
}

// HasDescendant matches when any descendant satisfies m.
func HasDescendant(m Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		found := false
		ast.Inspect(n, func(d ast.Node) {
			if found || d == n {
				return
			}
			trial := b.clone()
			if m(d, trial) {
				for k, v := range trial {
					b[k] = v
				}
				found = true
			}
		})
		return found
	}
}

// AnyOf matches when any sub-matcher matches.
func AnyOf(ms ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		for _, m := range ms {
			if m(n, b) {
				return true
			}
		}
		return false
	}
}

// AllOf matches when all sub-matchers match.
func AllOf(ms ...Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		return allOf(n, b, ms)
	}
}

// Not inverts a matcher.
func Not(m Matcher) Matcher {
	return func(n ast.Node, b Bindings) bool {
		return !m(n, b.clone())
	}
}

// HasType applies a matcher against the declared type name of a field,
// variable, or parameter-owning node.
func HasType(pred func(*ast.Type) bool) Matcher {
	return func(n ast.Node, b Bindings) bool {
		switch x := n.(type) {
		case *ast.FieldDecl:
			return pred(x.Type)
		case *ast.VarDecl:
			return pred(x.Type)
		case *ast.AliasDecl:
			return pred(x.Target)
		}
		return false
	}
}
