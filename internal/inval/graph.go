package inval

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cpp/lexer"
	"repro/internal/cpp/token"
	"repro/internal/vfs"
)

// Action is the cheapest sound rebuild response to one edit.
type Action int

const (
	// Keep means the prepared setup is still exactly valid: nothing is
	// rebuilt (the early-cutoff hit). Translation units whose content
	// hashes changed still rebuild through the build cache's manifest
	// validation on the next cycle — Keep only means the Prepare-time
	// artifacts (tool outputs, wrappers object, PCH) stay live.
	Keep Action = iota
	// RecompileWrappers means the tool outputs are still valid but the
	// wrappers object's unit statistics went stale (a function body
	// count changed in its closure, which the link model sums), so only
	// wrappers.cpp recompiles.
	RecompileWrappers
	// Reprepare means the edit (possibly) changed an interface some
	// consumer depends on: the whole setup re-prepares, exactly like the
	// pre-early-cutoff behavior.
	Reprepare
)

// String names the action for logs and wire payloads.
func (a Action) String() string {
	switch a {
	case Keep:
		return "keep"
	case RecompileWrappers:
		return "recompile-wrappers"
	default:
		return "reprepare"
	}
}

// Decision is the planner's verdict on one edit.
type Decision struct {
	Action Action
	// Reason is a short human-readable justification.
	Reason string
	// DeclsDiffed is how many decl interfaces were compared (0 when the
	// decision short-circuited before diffing).
	DeclsDiffed int
	// ChangedDecls lists the decl keys whose interface changed.
	ChangedDecls []string
}

// Graph is the decl-level dependency graph recorded at Prepare time: the
// file closure each prepared artifact read, and the declaration names
// its consumers (sources, generated wrappers, lightweight header)
// reference. It is shared across the goroutines of one session and safe
// for concurrent Classify calls.
type Graph struct {
	mu sync.Mutex
	// files is the union closure of every prepared translation unit.
	files map[string]bool
	// wrapperFiles is the wrappers TU's own closure (RecompileWrappers
	// is only worth scheduling for files it actually read).
	wrapperFiles map[string]bool
	// absent records negative include probes: paths whose absence the
	// prepared result depends on. Creating one invalidates everything.
	absent map[string]bool
	// used is the set of base identifiers the consumers mention: all
	// identifier tokens of the subject sources and of every generated
	// artifact. A header decl whose name never appears here cannot
	// change the tool's output.
	used map[string]bool
	// snaps caches the latest accepted snapshot per file so consecutive
	// edits diff against the session's current state, not re-read disk.
	snaps map[string]*FileSnapshot

	// PCHFiles, when non-nil, lists files covered by a prepared PCH
	// blob; any edit to them re-prepares (the blob must rebuild).
	PCHFiles map[string]bool
}

// NewGraph returns an empty graph; callers populate it with AddFiles /
// AddWrapperFiles / AddAbsent / AddUsedIdents.
func NewGraph() *Graph {
	return &Graph{
		files:        map[string]bool{},
		wrapperFiles: map[string]bool{},
		absent:       map[string]bool{},
		used:         map[string]bool{},
		snaps:        map[string]*FileSnapshot{},
	}
}

// AddFiles records paths in the prepared closure.
func (g *Graph) AddFiles(paths ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range paths {
		g.files[vfs.Clean(p)] = true
	}
}

// AddWrapperFiles records paths in the wrappers TU's closure (they are
// added to the overall closure too).
func (g *Graph) AddWrapperFiles(paths ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range paths {
		p = vfs.Clean(p)
		g.files[p] = true
		g.wrapperFiles[p] = true
	}
}

// AddAbsent records negative include probes.
func (g *Graph) AddAbsent(paths ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range paths {
		g.absent[vfs.Clean(p)] = true
	}
}

// AddUsedIdents lexes content and records every identifier and keyword
// spelling as a used name. Lexing is tolerant: files that do not lex
// contribute whatever tokens were produced before the error.
func (g *Graph) AddUsedIdents(path, content string) {
	lx := lexer.New(vfs.Clean(path), content)
	var names []string
	for {
		t := lx.Next()
		if t.Kind == token.EOF {
			break
		}
		if t.Kind == token.Identifier {
			names = append(names, t.Text)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range names {
		g.used[n] = true
	}
}

// Stats summarizes the graph for dashboards.
type Stats struct {
	Files        int `json:"files"`
	WrapperFiles int `json:"wrapper_files"`
	Absent       int `json:"absent"`
	UsedNames    int `json:"used_names"`
}

// Stats snapshots the graph's sizes.
func (g *Graph) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Files:        len(g.files),
		WrapperFiles: len(g.wrapperFiles),
		Absent:       len(g.absent),
		UsedNames:    len(g.used),
	}
}

// Classify decides the rebuild action for one structural edit. existed
// and oldContent describe the file before the write; newContent is the
// bytes just written. The accepted new snapshot is cached so the next
// edit to the same file diffs against the session's current state.
func (g *Graph) Classify(path string, oldContent string, existed bool, newContent string) Decision {
	path = vfs.Clean(path)
	g.mu.Lock()
	defer g.mu.Unlock()

	if !existed {
		if g.absent[path] {
			// The prepared result depends on this path NOT existing
			// (a negative include probe would now resolve differently).
			return Decision{Action: Reprepare, Reason: "new file satisfies a recorded include probe"}
		}
		if !g.files[path] {
			return Decision{Action: Keep, Reason: "new file outside the dependency closure"}
		}
		// In the closure yet previously unreadable: be conservative.
		return Decision{Action: Reprepare, Reason: "file in closure appeared"}
	}
	if g.PCHFiles != nil && g.PCHFiles[path] {
		return Decision{Action: Reprepare, Reason: "file is covered by the prepared PCH"}
	}
	if !g.files[path] {
		return Decision{Action: Keep, Reason: "file outside the dependency closure"}
	}

	old := g.snaps[path]
	if old == nil || old.Path != path {
		old = Snapshot(path, oldContent)
	}
	new := Snapshot(path, newContent)
	g.snaps[path] = new
	if !old.OK || !new.OK {
		return Decision{Action: Reprepare, Reason: "file does not parse in isolation"}
	}

	d := Diff(old, new)
	dec := Decision{DeclsDiffed: d.DeclsDiffed, ChangedDecls: d.Changed}
	if d.MiscChanged {
		dec.Action = Reprepare
		dec.Reason = "directive or non-declaration change"
		return dec
	}
	var usedChanged []string
	for name := range d.ChangedNames {
		if g.used[name] {
			usedChanged = append(usedChanged, name)
		}
	}
	if len(usedChanged) > 0 {
		sort.Strings(usedChanged)
		dec.Action = Reprepare
		dec.Reason = fmt.Sprintf("used decl interface changed: %s", strings.Join(usedChanged, ", "))
		return dec
	}
	if len(d.Changed) > 0 || d.FuncDefsDelta != 0 {
		if g.wrapperFiles[path] {
			dec.Action = RecompileWrappers
			dec.Reason = "unused decls changed in the wrappers closure"
			return dec
		}
		dec.Action = Keep
		dec.Reason = "unused decls changed outside the wrappers closure"
		return dec
	}
	dec.Action = Keep
	dec.Reason = "no declaration interface changed"
	return dec
}
