package inval

import (
	"repro/internal/cpp/lexer"
	"repro/internal/cpp/parser"
	"repro/internal/cpp/preprocessor"
	"repro/internal/cpp/token"
	"repro/internal/vfs"
)

// DeclExtent is one top-level declaration's byte range inside a header,
// keyed by the same per-decl interface key the early-cutoff snapshots
// use ("kind scope::name"). Overload sets and redeclarations produce
// multiple extents sharing one Key; consumers that treat the key as the
// unit of work (the header splitter does) must keep them together.
type DeclExtent struct {
	// Key is inval's per-decl interface key: "kind scope::name".
	Key string
	// Name is the unqualified base name consumers spell at use sites.
	Name string
	// Scope is the enclosing namespace path, "" at file scope or
	// "A::B::" style otherwise.
	Scope string
	// Start is the byte offset of the declaration's first token.
	Start int
	// End is the exclusive byte offset one past the declaration's last
	// token (the trailing ";" or "}"), so content[Start:End] is the
	// full declaration text.
	End int
}

// Extents parses one file in isolation (the Snapshot pattern: includes
// resolve to nothing and are recorded as missing) and returns its
// top-level declaration extents in source order. ok is false when the
// file does not lex or parse cleanly on its own, in which case callers
// must treat the file as opaque.
func Extents(path, content string) (extents []DeclExtent, ok bool) {
	path = vfs.Clean(path)

	lx := lexer.New(path, content)
	// lenAt maps a raw token's start offset to its byte length, so an
	// inclusive AST end position (which points AT the last token) can be
	// extended to an exclusive byte offset.
	lenAt := map[int32]int{}
	for {
		t := lx.Next()
		if t.Kind == token.EOF {
			break
		}
		lenAt[t.Pos.Offset] = len(t.Text)
	}
	if len(lx.Errors()) > 0 {
		return nil, false
	}

	sfs := vfs.New()
	sfs.Write(path, content)
	res, err := preprocessor.New(sfs).Preprocess(path)
	if err != nil {
		return nil, false
	}
	pr := parser.New(res.Tokens)
	tu, err := pr.Parse()
	if err != nil || len(pr.Errors()) > 0 {
		return nil, false
	}

	decls, _, _ := collectExtents(tu)
	extents = make([]DeclExtent, 0, len(decls))
	for _, d := range decls {
		extents = append(extents, DeclExtent{
			Key:   d.key,
			Name:  d.name,
			Scope: d.scope,
			Start: int(d.start),
			End:   int(d.end) + lenAt[d.end],
		})
	}
	return extents, true
}
