package inval

import (
	"strings"
	"testing"
)

const baseHeader = `#pragma once
#include <vector>

namespace lib {

// A widget.
class Widget {
public:
    Widget(int id) : id_(id) {}
    int id() const { return id_; }
    template <typename T>
    T scaled(T f) const { return f * static_cast<T>(id_); }
private:
    int id_;
};

using WidgetRef = Widget;

enum class Mode { Fast, Safe };

inline int helper(int v) { return v + 1; }

int free_fn(const Widget& w);

} // namespace lib
`

func TestSnapshotParses(t *testing.T) {
	s := Snapshot("lib/widget.hpp", baseHeader)
	if !s.OK {
		t.Fatalf("snapshot not OK")
	}
	for _, key := range []string{"class lib::Widget", "alias lib::WidgetRef", "enum lib::Mode", "func lib::helper", "func lib::free_fn"} {
		if _, ok := s.Decls[key]; !ok {
			t.Errorf("missing decl key %q (have %v)", key, keys(s))
		}
	}
	// helper's body plus Widget's two method bodies.
	if s.FuncDefs < 3 {
		t.Errorf("FuncDefs = %d, want >= 3", s.FuncDefs)
	}
}

func keys(s *FileSnapshot) []string {
	var out []string
	for k := range s.Decls {
		out = append(out, k)
	}
	return out
}

func TestCommentEditIsInvisible(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	edited := strings.Replace(baseHeader, "// A widget.", "// A widget, now lovingly documented.\n// Across two lines.", 1)
	cur := Snapshot("h.hpp", edited+"\n// trailing note\n")
	d := Diff(old, cur)
	if d.Interface() {
		t.Fatalf("comment edit changed interface: misc=%v changed=%v", d.MiscChanged, d.Changed)
	}
	if d.FuncDefsDelta != 0 {
		t.Fatalf("comment edit changed FuncDefs by %d", d.FuncDefsDelta)
	}
}

func TestBodyEditIsInvisible(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	edited := strings.Replace(baseHeader, "return v + 1;", "int tmp = v; return tmp + 2;", 1)
	edited = strings.Replace(edited, "return f * static_cast<T>(id_);", "return f + f * static_cast<T>(id_) - f;", 1)
	d := Diff(old, Snapshot("h.hpp", edited))
	if d.Interface() {
		t.Fatalf("body edit changed interface: misc=%v changed=%v", d.MiscChanged, d.Changed)
	}
	if d.FuncDefsDelta != 0 {
		t.Fatalf("body edit changed FuncDefs by %d", d.FuncDefsDelta)
	}
}

func TestSignatureEditChangesOnlyThatDecl(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	edited := strings.Replace(baseHeader, "inline int helper(int v)", "inline long helper(long v)", 1)
	d := Diff(old, Snapshot("h.hpp", edited))
	if d.MiscChanged {
		t.Fatalf("signature edit leaked into misc")
	}
	if len(d.Changed) != 1 || d.Changed[0] != "func lib::helper" {
		t.Fatalf("changed = %v, want [func lib::helper]", d.Changed)
	}
	if !d.ChangedNames["helper"] {
		t.Fatalf("changed names = %v, want helper", d.ChangedNames)
	}
}

func TestFieldLayoutEditChangesClass(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	edited := strings.Replace(baseHeader, "int id_;", "long id_;", 1)
	d := Diff(old, Snapshot("h.hpp", edited))
	if len(d.Changed) != 1 || d.Changed[0] != "class lib::Widget" {
		t.Fatalf("changed = %v, want [class lib::Widget]", d.Changed)
	}
}

func TestMethodBodyEditKeepsClassHash(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	edited := strings.Replace(baseHeader, "return id_;", "auto v = id_; return v;", 1)
	d := Diff(old, Snapshot("h.hpp", edited))
	if d.Interface() {
		t.Fatalf("method body edit changed interface: %v", d.Changed)
	}
}

func TestMacroEditHitsMisc(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	d := Diff(old, Snapshot("h.hpp", baseHeader+"#define LIB_EXTRA 1\n"))
	if !d.MiscChanged {
		t.Fatalf("macro edit did not change misc")
	}
}

func TestIncludeEditHitsMisc(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	edited := strings.Replace(baseHeader, "#include <vector>", "#include <vector>\n#include <map>", 1)
	d := Diff(old, Snapshot("h.hpp", edited))
	if !d.MiscChanged {
		t.Fatalf("include edit did not change misc")
	}
}

func TestAddedFunctionDef(t *testing.T) {
	old := Snapshot("h.hpp", baseHeader)
	edited := baseHeader + "namespace lib { inline int probe(int v) { return v; } }\n"
	d := Diff(old, Snapshot("h.hpp", edited))
	if d.MiscChanged {
		t.Fatalf("added function leaked into misc")
	}
	// The new decl changes its own key plus the namespace scaffolding.
	if len(d.ChangedNames) != 1 || !d.ChangedNames["probe"] {
		t.Fatalf("changed names = %v, want {probe}", d.ChangedNames)
	}
	if d.FuncDefsDelta != 1 {
		t.Fatalf("FuncDefsDelta = %d, want 1", d.FuncDefsDelta)
	}
}

func TestUnparseableIsNotOK(t *testing.T) {
	s := Snapshot("h.hpp", "class { int ; } ( ] garbage !!")
	if s.OK {
		t.Fatalf("garbage snapshot reported OK")
	}
}

func TestGraphClassify(t *testing.T) {
	g := NewGraph()
	g.AddFiles("lib/widget.hpp", "other/detail.hpp")
	g.AddWrapperFiles("lib/widget.hpp")
	g.AddAbsent("lib/widget_ext.hpp")
	g.AddUsedIdents("main.cpp", "int main() { lib::Widget w(3); return w.id(); }")

	// Comment edit: keep.
	edited := strings.Replace(baseHeader, "// A widget.", "// A fine widget.", 1)
	if d := g.Classify("lib/widget.hpp", baseHeader, true, edited); d.Action != Keep {
		t.Fatalf("comment edit: action=%v reason=%q", d.Action, d.Reason)
	}
	// Consecutive edit diffs against the cached snapshot, not the original.
	edited2 := strings.Replace(edited, "return v + 1;", "return v + 2;", 1)
	if d := g.Classify("lib/widget.hpp", "SHOULD NOT BE READ", true, edited2); d.Action != Keep {
		t.Fatalf("body edit after comment edit: action=%v reason=%q", d.Action, d.Reason)
	}
	// Used interface change: reprepare.
	edited3 := strings.Replace(edited2, "int id() const", "long id() const", 1)
	if d := g.Classify("lib/widget.hpp", "", true, edited3); d.Action != Reprepare {
		t.Fatalf("used interface edit: action=%v reason=%q", d.Action, d.Reason)
	}
	// Unused decl added in the wrappers closure: recompile wrappers.
	edited4 := edited3 + "namespace lib { inline int unused_probe(int v) { return v; } }\n"
	if d := g.Classify("lib/widget.hpp", "", true, edited4); d.Action != RecompileWrappers {
		t.Fatalf("unused add: action=%v reason=%q", d.Action, d.Reason)
	}
	// File outside the closure: keep, no snapshot needed.
	if d := g.Classify("unrelated/x.hpp", "anything", true, "anything else"); d.Action != Keep {
		t.Fatalf("outside closure: action=%v reason=%q", d.Action, d.Reason)
	}
	// Creating a file that satisfies a negative probe: reprepare.
	if d := g.Classify("lib/widget_ext.hpp", "", false, "int x;"); d.Action != Reprepare {
		t.Fatalf("absent probe: action=%v reason=%q", d.Action, d.Reason)
	}
	// Creating an unrelated file: keep.
	if d := g.Classify("novel/file.hpp", "", false, "int y;"); d.Action != Keep {
		t.Fatalf("novel file: action=%v reason=%q", d.Action, d.Reason)
	}
	// Macro edit: reprepare even though no used decl changed.
	edited5 := edited4 + "#define WIDGET_PATCH 2\n"
	if d := g.Classify("lib/widget.hpp", "", true, edited5); d.Action != Reprepare {
		t.Fatalf("macro edit: action=%v reason=%q", d.Action, d.Reason)
	}
	// PCH coverage: reprepare.
	g2 := NewGraph()
	g2.AddFiles("lib/widget.hpp")
	g2.PCHFiles = map[string]bool{"lib/widget.hpp": true}
	if d := g2.Classify("lib/widget.hpp", baseHeader, true, edited); d.Action != Reprepare {
		t.Fatalf("pch-covered edit: action=%v reason=%q", d.Action, d.Reason)
	}
}

func TestGraphStats(t *testing.T) {
	g := NewGraph()
	g.AddFiles("a.hpp")
	g.AddWrapperFiles("b.hpp")
	g.AddAbsent("c.hpp")
	g.AddUsedIdents("m.cpp", "int main() { return f(); }")
	st := g.Stats()
	if st.Files != 2 || st.WrapperFiles != 1 || st.Absent != 1 || st.UsedNames == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
