// Package inval implements fine-grained incremental invalidation
// ("early cutoff") for warm daemon sessions. During Prepare the daemon
// records a decl-level dependency graph: which files the prepared
// translation units read, and which declaration names the sources and
// the generated artifacts actually reference. On a header edit it
// re-lexes and re-parses only the edited file, diffs per-declaration
// interface hashes (name, signature, type layout — bodies and comments
// excluded) against the previous state, and decides the cheapest sound
// rebuild action: nothing, a wrappers-object recompile, or a full
// re-Prepare. A comment-only or body-only header edit in a warm
// session therefore rebuilds nothing and costs ~0 — the "early cutoff"
// of build-system literature, applied at declaration granularity.
//
// Soundness over precision: every byte of the file lands in some hash
// bucket. Tokens the isolated parse cannot attribute to a declaration
// (preprocessor directives, conditionally-inactive regions, stray
// tokens) go into a per-file misc hash whose change forces a full
// re-Prepare, so imprecision always fails toward rebuilding more.
package inval

import (
	"hash"
	"hash/fnv"
	"sort"

	"repro/internal/cpp/ast"
	"repro/internal/cpp/lexer"
	"repro/internal/cpp/parser"
	"repro/internal/cpp/preprocessor"
	"repro/internal/cpp/token"
	"repro/internal/vfs"
)

// DeclSig is one declaration's interface summary inside a FileSnapshot.
type DeclSig struct {
	// Name is the unqualified base name (what consumers spell at use
	// sites; overload sets and out-of-line definitions share it).
	Name string
	// Hash covers the declaration's interface tokens: everything in the
	// decl's source extent except function bodies. Decls sharing a key
	// (overload sets, redeclarations) fold into one hash in source order.
	Hash uint64
	// FuncDefs counts function bodies inside the extent (class methods
	// included); the linker model sums these, so a count change must
	// refresh the wrappers object even when no interface changed.
	FuncDefs int
}

// FileSnapshot is the invalidation-relevant digest of one file: every
// token classified into a named declaration's interface hash, a
// function body (excluded), or the conservative misc bucket.
type FileSnapshot struct {
	Path string
	// OK is false when the file did not lex or parse cleanly in
	// isolation; the planner then treats any edit as a full rebuild.
	OK bool
	// Decls maps a decl key ("kind qualified::name") to its signature.
	Decls map[string]DeclSig
	// Misc hashes everything outside decl extents: preprocessor
	// directives (macros, includes, conditionals), tokens in regions the
	// isolated preprocess skipped, and anything the parser could not
	// claim. Any misc change is conservatively a full rebuild.
	Misc uint64
	// FuncDefs is the file-total function-body count.
	FuncDefs int
}

// declExtent is one top-level declaration's byte range.
type declExtent struct {
	start, end int32
	key        string
	name       string
	scope      string
	funcDefs   int
}

// span is a half-open byte range (function bodies).
type span struct{ start, end int32 }

// Snapshot digests one file's content. It never touches the filesystem:
// the caller supplies the exact bytes (old content before an edit, new
// content after), so diffing old vs new is a pure function of the two
// strings.
func Snapshot(path, content string) *FileSnapshot {
	path = vfs.Clean(path)
	snap := &FileSnapshot{Path: path, Decls: map[string]DeclSig{}}

	// Raw token stream: comments and whitespace drop out here, which is
	// exactly the "comments excluded" part of the interface hash. The
	// raw stream still contains directive tokens and inactive regions,
	// so nothing an edit can change escapes classification.
	lx := lexer.New(path, content)
	var raw []token.Token
	for {
		t := lx.Next()
		if t.Kind == token.EOF {
			break
		}
		raw = append(raw, t)
	}
	if len(lx.Errors()) > 0 {
		return snap // OK=false: conservative
	}

	// Structure from an isolated single-file parse: includes are
	// unresolvable on the empty search path, the preprocessor records
	// them as missing and moves on, and the parser sees only this
	// file's own declarations — which is all the diff needs.
	sfs := vfs.New()
	sfs.Write(path, content)
	res, err := preprocessor.New(sfs).Preprocess(path)
	if err != nil {
		return snap
	}
	pr := parser.New(res.Tokens)
	tu, err := pr.Parse()
	if err != nil || len(pr.Errors()) > 0 {
		return snap
	}

	decls, bodies, nsSpans := collectExtents(tu)
	funcDefs := len(bodies)
	bodies = mergeSpans(bodies) // lambdas nest inside enclosing bodies
	snap.OK = true
	snap.FuncDefs = funcDefs

	// Classify every raw token by offset. Directive tokens always land
	// in misc, even inside a body extent: a #define is global no matter
	// where it appears in the file.
	misc := fnv.New64a()
	hashes := map[string]hash.Hash64{}
	inDirective := false
	for _, t := range raw {
		if t.LeadingNewline {
			inDirective = t.Kind == token.Hash
		}
		if inDirective {
			hashToken(misc, t.Text)
			continue
		}
		off := t.Pos.Offset
		if inSpan(bodies, off) {
			continue // function body: excluded from every hash
		}
		if d := findDecl(decls, off); d != nil {
			h, ok := hashes[d.key]
			if !ok {
				h = fnv.New64a()
				hashes[d.key] = h
			}
			hashToken(h, t.Text)
			continue
		}
		// Namespace scaffolding ("namespace", the name, braces) between
		// leaf decls hashes under an unnamed per-file key: reopening a
		// namespace must not look like a directive-level change, but a
		// rename still shifts every inner decl's scoped key.
		if t.Kind == token.Semi || inAnySpan(nsSpans, off) {
			// Stray semicolons likewise attach to the nearest preceding
			// decl's scaffolding bucket rather than misc, so appending a
			// semicolon-terminated decl never looks like a misc change.
			h, ok := hashes[scaffoldKey]
			if !ok {
				h = fnv.New64a()
				hashes[scaffoldKey] = h
			}
			hashToken(h, t.Text)
			continue
		}
		hashToken(misc, t.Text)
	}
	snap.Misc = misc.Sum64()
	for _, d := range decls {
		h, ok := hashes[d.key]
		if !ok {
			continue // extent held only comments/whitespace
		}
		sig := snap.Decls[d.key]
		sig.Name = d.name
		sig.Hash = h.Sum64()
		sig.FuncDefs += d.funcDefs
		snap.Decls[d.key] = sig
	}
	if h, ok := hashes[scaffoldKey]; ok {
		snap.Decls[scaffoldKey] = DeclSig{Hash: h.Sum64()}
	}
	return snap
}

// scaffoldKey hashes namespace scaffolding and stray semicolons; its
// empty base name never matches a used identifier, so scaffolding-only
// changes stay on the cheap rebuild paths.
const scaffoldKey = "scaffold"

// mergeSpans unions overlapping/nested spans so binary search works.
func mergeSpans(spans []span) []span {
	if len(spans) < 2 {
		return spans
	}
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// inAnySpan is a linear containment probe for short (possibly nested)
// span lists. The end is inclusive: NamespaceDecl.End() points at the
// closing brace token, not one past it.
func inAnySpan(spans []span, off int32) bool {
	for _, s := range spans {
		if s.start <= off && off <= s.end {
			return true
		}
	}
	return false
}

func hashToken(h hash.Hash64, text string) {
	h.Write([]byte(text))
	h.Write([]byte{0}) // token boundary: "ab c" != "a bc"
}

// collectExtents flattens the translation unit into leaf declaration
// extents (namespaces recurse; classes stay whole so member signatures
// and field layout are part of the class hash) plus the function-body
// spans to excise.
func collectExtents(tu *ast.TranslationUnit) ([]declExtent, []span, []span) {
	var decls []declExtent
	var bodies []span
	var nsSpans []span

	var walkDecl func(d ast.Decl, scope string)
	walkDecl = func(d ast.Decl, scope string) {
		if ns, ok := d.(*ast.NamespaceDecl); ok {
			nsSpans = append(nsSpans, span{ns.Pos().Offset, ns.End().Offset})
			inner := scope + ns.Name + "::"
			for _, c := range ns.Decls {
				walkDecl(c, inner)
			}
			return
		}
		kind, name := declKindName(d)
		ext := declExtent{
			start: d.Pos().Offset,
			end:   d.End().Offset,
			key:   kind + " " + scope + name,
			name:  name,
			scope: scope,
		}
		// Excise every function body nested in the extent (free
		// functions, methods, lambdas in default arguments...).
		ast.Inspect(d, func(n ast.Node) {
			switch fn := n.(type) {
			case *ast.FunctionDecl:
				if fn.Body != nil {
					bodies = append(bodies, span{fn.Body.Pos().Offset, fn.Body.End().Offset})
					ext.funcDefs++
				}
			case *ast.LambdaExpr:
				if fn.Body != nil {
					bodies = append(bodies, span{fn.Body.Pos().Offset, fn.Body.End().Offset})
				}
			}
		})
		decls = append(decls, ext)
	}
	for _, d := range tu.Decls {
		walkDecl(d, "")
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].start < decls[j].start })
	sort.Slice(bodies, func(i, j int) bool { return bodies[i].start < bodies[j].start })
	return decls, bodies, nsSpans
}

// declKindName names a declaration for its diff key. Unknown node kinds
// key by position-independent kind only, which still diffs correctly
// (the extent hash covers the text).
func declKindName(d ast.Decl) (kind, name string) {
	switch n := d.(type) {
	case *ast.ClassDecl:
		return n.Keyword, n.Name
	case *ast.FunctionDecl:
		name := n.Name
		if !n.QualifierName.IsEmpty() {
			name = n.QualifierName.Plain() + "::" + n.Name
		}
		return "func", name
	case *ast.AliasDecl:
		return "alias", n.Name
	case *ast.EnumDecl:
		return "enum", n.Name
	case *ast.VarDecl:
		return "var", n.Name
	case *ast.UsingDecl:
		return "using", n.Name.Plain()
	case *ast.StaticAssertDecl:
		return "static_assert", ""
	default:
		return "decl", ""
	}
}

// inSpan reports whether off falls inside any (sorted) span.
func inSpan(spans []span, off int32) bool {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end > off })
	return i < len(spans) && spans[i].start <= off
}

// findDecl returns the (sorted) declaration extent containing off.
func findDecl(decls []declExtent, off int32) *declExtent {
	i := sort.Search(len(decls), func(i int) bool { return decls[i].end > off })
	if i < len(decls) && decls[i].start <= off {
		return &decls[i]
	}
	return nil
}
