package inval

import "sort"

// Delta is the interface-level difference between two snapshots of the
// same file.
type Delta struct {
	// DeclsDiffed is how many distinct decl keys were compared (the
	// union of both snapshots' key sets).
	DeclsDiffed int
	// Changed lists decl keys whose interface hash changed, appeared,
	// or disappeared, in sorted order.
	Changed []string
	// ChangedNames is the set of base names behind Changed.
	ChangedNames map[string]bool
	// MiscChanged is true when the conservative bucket (directives,
	// inactive regions, unclaimed tokens) differs.
	MiscChanged bool
	// FuncDefsDelta is new.FuncDefs - old.FuncDefs.
	FuncDefsDelta int
}

// Interface reports whether any declaration interface (or the
// conservative misc bucket) changed.
func (d *Delta) Interface() bool { return d.MiscChanged || len(d.Changed) > 0 }

// Diff compares two snapshots of one file. Both must be OK; callers
// handle the conservative not-OK case before diffing.
func Diff(old, new *FileSnapshot) *Delta {
	d := &Delta{ChangedNames: map[string]bool{}, MiscChanged: old.Misc != new.Misc}
	d.FuncDefsDelta = new.FuncDefs - old.FuncDefs
	keys := map[string]bool{}
	for k := range old.Decls {
		keys[k] = true
	}
	for k := range new.Decls {
		keys[k] = true
	}
	d.DeclsDiffed = len(keys)
	for k := range keys {
		o, inOld := old.Decls[k]
		n, inNew := new.Decls[k]
		if inOld && inNew && o.Hash == n.Hash {
			continue
		}
		d.Changed = append(d.Changed, k)
		if inOld && o.Name != "" {
			d.ChangedNames[o.Name] = true
		}
		if inNew && n.Name != "" {
			d.ChangedNames[n.Name] = true
		}
	}
	sort.Strings(d.Changed)
	return d
}
