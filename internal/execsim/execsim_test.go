package execsim

import (
	"testing"

	"repro/internal/codegen"
)

func TestYallaSlowerThanDefault(t *testing.T) {
	m := DefaultCostModel()
	def, err := Run(codegen.Kernel02(false, 64), "kernel02", codegen.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	yal, err := Run(codegen.Kernel02(true, 64), "kernel02", codegen.DefaultOptions(), m)
	if err != nil {
		t.Fatal(err)
	}
	if yal.Cycles <= def.Cycles {
		t.Fatalf("yalla cycles %.0f <= default %.0f; wrapper calls must cost (§5.4)",
			yal.Cycles, def.Cycles)
	}
	if def.CallsExecuted != 0 {
		t.Fatalf("default executed %d non-inlined calls", def.CallsExecuted)
	}
	// 64 loop trips × 2 accesses + 1 epilogue access.
	if yal.CallsExecuted != 64*2+1 {
		t.Fatalf("yalla executed %d calls, want %d", yal.CallsExecuted, 64*2+1)
	}
}

func TestLTOMatchesDefault(t *testing.T) {
	m := DefaultCostModel()
	opts := codegen.DefaultOptions()
	def, _ := Run(codegen.Kernel02(false, 32), "kernel02", opts, m)
	lto := codegen.DefaultOptions()
	lto.LTO = true
	y, err := Run(codegen.Kernel02(true, 32), "kernel02", lto, m)
	if err != nil {
		t.Fatal(err)
	}
	if y.Cycles != def.Cycles {
		t.Fatalf("LTO cycles %.0f != default %.0f; LTO should recover inlining", y.Cycles, def.Cycles)
	}
}

func TestCyclesScaleWithTrips(t *testing.T) {
	m := DefaultCostModel()
	small, _ := Run(codegen.Kernel02(false, 8), "kernel02", codegen.DefaultOptions(), m)
	big, _ := Run(codegen.Kernel02(false, 80), "kernel02", codegen.DefaultOptions(), m)
	if big.Cycles < 8*small.Cycles {
		t.Fatalf("cycles do not scale with loop trips: %f vs %f", small.Cycles, big.Cycles)
	}
}

func TestUnknownEntry(t *testing.T) {
	if _, err := Run(codegen.NewProgram(), "x", codegen.DefaultOptions(), DefaultCostModel()); err == nil {
		t.Fatal("want error")
	}
}

func TestTimePositive(t *testing.T) {
	r, err := Run(codegen.Kernel02(false, 16), "kernel02", codegen.DefaultOptions(), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 || r.Instructions == 0 {
		t.Fatalf("result = %+v", r)
	}
}
