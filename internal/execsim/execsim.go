// Package execsim executes codegen kernel IR under a cycle cost model,
// providing the run-time component of the development cycle (Fig. 8) and
// quantifying the §5.4 effect: YALLA-transformed kernels run slower than
// the default build because wrapper calls cross translation units and
// cannot be inlined — "the call instructions do not appear [in the
// default build] as the compiler inlines them".
package execsim

import (
	"fmt"
	"time"

	"repro/internal/codegen"
)

// CostModel maps IR execution to cycles.
type CostModel struct {
	ALUCycles  float64 // add/mul/mov
	MemCycles  float64 // load/store
	CallCycles float64 // call+prologue+epilogue+return for non-inlined calls
	// MissedOpt multiplies non-inlined callee bodies (lost context for
	// vectorization/scheduling).
	MissedOpt float64
	// CycleNs is the duration of one cycle in nanoseconds (~0.277 ns at
	// 3.6 GHz).
	CycleNs float64
}

// DefaultCostModel approximates a ~3.6 GHz core.
func DefaultCostModel() CostModel {
	return CostModel{
		ALUCycles:  1,
		MemCycles:  4,
		CallCycles: 30,
		MissedOpt:  1.6,
		CycleNs:    0.277,
	}
}

// Result is one simulated execution.
type Result struct {
	Cycles        float64
	Instructions  int
	CallsExecuted int
	Time          time.Duration
}

// Run executes entry with the TU-visibility inlining rule applied: calls
// to functions in the same TU (or any TU with LTO) execute at inlined
// cost, others pay call overhead plus the missed-optimization multiplier.
func Run(p *codegen.Program, entry string, opts codegen.Options, m CostModel) (*Result, error) {
	f := p.Funcs[entry]
	if f == nil {
		return nil, fmt.Errorf("execsim: no function %q", entry)
	}
	r := &Result{}
	if err := runBody(p, f, f.Body, opts, m, r, 1.0, 0); err != nil {
		return nil, err
	}
	r.Time = time.Duration(r.Cycles * m.CycleNs)
	return r, nil
}

const maxDepth = 32

func runBody(p *codegen.Program, caller *codegen.Function, body []codegen.Instr, opts codegen.Options, m CostModel, r *Result, penalty float64, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("execsim: call depth exceeded")
	}
	for _, in := range body {
		switch in.Op {
		case codegen.OpAdd, codegen.OpMul, codegen.OpMov, codegen.OpRet:
			r.Cycles += m.ALUCycles * penalty
			r.Instructions++
		case codegen.OpLoad, codegen.OpStore:
			r.Cycles += m.MemCycles * penalty
			r.Instructions++
		case codegen.OpLoop:
			trips := in.Trips
			if trips <= 0 {
				trips = 1
			}
			for t := 0; t < trips; t++ {
				if err := runBody(p, caller, in.Body, opts, m, r, penalty, depth); err != nil {
					return err
				}
				r.Cycles += m.ALUCycles * penalty // loop latch
			}
		case codegen.OpCall:
			callee := p.Funcs[in.Callee]
			if callee == nil {
				return fmt.Errorf("execsim: call to unknown %q", in.Callee)
			}
			inlined := opts.LTO || callee.TU == caller.TU
			if inlined {
				if err := runBody(p, callee, callee.Body, opts, m, r, penalty, depth+1); err != nil {
					return err
				}
				continue
			}
			r.CallsExecuted++
			r.Cycles += m.CallCycles
			if err := runBody(p, callee, callee.Body, opts, m, r, m.MissedOpt, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}
