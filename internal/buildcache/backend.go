package buildcache

// Backend is a remote content-addressed cache tier (L2) behind the
// in-process cache (L1). Implementations (internal/farm.Remote speaks
// the farm's HTTP protocol) must be safe for concurrent use and should
// degrade gracefully: a broken backend returns errors, and the cache
// treats every error as a miss — the local tier keeps working alone.
//
// Keys are content hashes (hex SHA-256 strings produced by FileKey and
// ConfigKey); ns separates the entry kinds so a token-stream payload can
// never be decoded as a translation unit. Payloads are opaque bytes
// produced by EncodeTokens/EncodeTU, which embed their own integrity
// hash — a fetched payload that fails its hash check is discarded as
// corrupt, so a malfunctioning backend cannot poison the local tier.
type Backend interface {
	// Get fetches a payload; ok is false on a clean miss.
	Get(ns, key string) (payload []byte, ok bool, err error)
	// Put stores a payload and releases any lease held on (ns, key),
	// waking lease waiters so they can re-Get.
	Put(ns, key string, payload []byte) error
	// Lease coordinates cross-node singleflight for a missing entry.
	// LeaseGranted makes the caller the builder: it must either Put the
	// built payload or Unlease on failure. LeaseReleased means another
	// node finished building while we waited — re-Get. Implementations
	// block (bounded) while another holder is building.
	Lease(ns, key string) (LeaseState, error)
	// Unlease releases a granted lease without publishing a payload
	// (the build failed or produced an unserializable entry).
	Unlease(ns, key string) error
}

// LeaseState is the outcome of a Lease call.
type LeaseState int

const (
	// LeaseGranted: the caller owns the build for this key.
	LeaseGranted LeaseState = iota
	// LeaseReleased: another holder finished (published or gave up)
	// while we waited; the caller should re-Get and fall back to a
	// local build if the entry is still missing or invalid.
	LeaseReleased
	// LeaseUnavailable: the backend could not arbitrate in time (down,
	// or the wait budget expired while a holder was still building).
	// The caller builds locally without exclusivity.
	LeaseUnavailable
)

// String renders the state for logs and tests.
func (s LeaseState) String() string {
	switch s {
	case LeaseGranted:
		return "granted"
	case LeaseReleased:
		return "released"
	case LeaseUnavailable:
		return "unavailable"
	}
	return "unknown"
}

// Namespaces of the remote protocol. NSTokens holds EncodeTokens
// payloads keyed by FileKey; NSTU holds EncodeTU payloads keyed by the
// compilation ConfigKey.
const (
	NSTokens = "tok"
	NSTU     = "tu"
)
