package buildcache

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cpp/lexer"
	"repro/internal/cpp/token"
	"repro/internal/obs"
	"repro/internal/vfs"
)

func TestTokensHitEqualsFreshLex(t *testing.T) {
	c := New()
	const src = "int add(int a, int b) { return a + b; }\n"
	fresh, err := lexer.Tokenize("a.cpp", src)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Tokens("a.cpp", src, func() ([]token.Token, error) {
		return lexer.Tokenize("a.cpp", src)
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Tokens("a.cpp", src, func() ([]token.Token, error) {
		t.Fatal("lex called on a hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, first) {
		t.Fatal("cached miss differs from a fresh lex")
	}
	if &first[0] != &second[0] || len(first) != len(second) {
		t.Fatal("hit did not return the shared stream")
	}
	st := c.Stats()
	if st.TokenHits != 1 || st.TokenMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.BytesSaved != uint64(len(src)) {
		t.Fatalf("BytesSaved = %d, want %d", st.BytesSaved, len(src))
	}
}

func TestTokensSamePathDifferentContent(t *testing.T) {
	c := New()
	lex := func(name, src string) []token.Token {
		toks, err := c.Tokens(name, src, func() ([]token.Token, error) {
			return lexer.Tokenize(name, src)
		})
		if err != nil {
			t.Fatal(err)
		}
		return toks
	}
	v1 := lex("f.hpp", "int x;")
	v2 := lex("f.hpp", "int y;")
	if v1[0].Text != "int" || v2[0].Text != "int" {
		t.Fatalf("unexpected streams %v %v", v1, v2)
	}
	if v1[1].Text == v2[1].Text {
		t.Fatal("rewritten file served stale tokens")
	}
	st := c.Stats()
	if st.TokenMisses != 2 || st.TokenHits != 0 {
		t.Fatalf("stats = %+v, want two distinct entries", st)
	}
}

func TestTokensErrorNotCached(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	calls := 0
	lex := func() ([]token.Token, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return lexer.Tokenize("a.cpp", "int x;")
	}
	if _, err := c.Tokens("a.cpp", "int x;", lex); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := c.Tokens("a.cpp", "int x;", lex); err != nil {
		t.Fatalf("second call should re-lex, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("lex calls = %d, want 2 (failures are not pinned)", calls)
	}
}

func TestTokensSingleflight(t *testing.T) {
	c := New()
	var calls atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			toks, err := c.Tokens("a.cpp", "int x;", func() ([]token.Token, error) {
				calls.Add(1)
				return lexer.Tokenize("a.cpp", "int x;")
			})
			if err != nil || len(toks) == 0 {
				t.Errorf("Tokens: %v (%d toks)", err, len(toks))
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("lex ran %d times, want 1", calls.Load())
	}
}

func TestTokenEviction(t *testing.T) {
	c := New()
	c.MaxTokenEntries = 4
	for i := 0; i < 10; i++ {
		src := string(rune('a'+i)) + ";"
		if _, err := c.Tokens("f.hpp", src, func() ([]token.Token, error) {
			return lexer.Tokenize("f.hpp", src)
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding MaxTokenEntries")
	}
	if len(c.lex) > c.MaxTokenEntries {
		t.Fatalf("map holds %d entries, bound is %d", len(c.lex), c.MaxTokenEntries)
	}
}

func tuFS(t *testing.T, files map[string]string) *vfs.FS {
	t.Helper()
	fs := vfs.New()
	for p, src := range files {
		fs.Write(p, src)
	}
	return fs
}

func TestTranslationUnitManifestValidation(t *testing.T) {
	fs := tuFS(t, map[string]string{
		"main.cpp": `#include "a.hpp"` + "\nint main() {}\n",
		"a.hpp":    "int a();\n",
	})
	c := New()
	builds := 0
	build := func() (*TU, []Dep, error) {
		builds++
		h1, _ := fs.ContentHash("main.cpp")
		h2, _ := fs.ContentHash("a.hpp")
		return &TU{}, []Dep{
			{Path: "main.cpp", Hash: h1},
			{Path: "a.hpp", Hash: h2},
			{Path: "local/a.hpp"}, // negative: probe that missed
		}, nil
	}
	key := ConfigKey("compilesim", "main.cpp")

	if _, hit, err := c.TranslationUnit(key, Validator(fs), build); err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.TranslationUnit(key, Validator(fs), build); err != nil || !hit {
		t.Fatalf("unchanged inputs: hit=%v err=%v, want hit", hit, err)
	}

	// A clone with identical content still hits: the manifest is
	// content-addressed, not FS-identity-addressed.
	if _, hit, _ := c.TranslationUnit(key, Validator(fs.Clone()), build); !hit {
		t.Fatal("identical clone should hit")
	}

	// Editing a recorded dependency invalidates the entry.
	fs2 := fs.Clone()
	fs2.Write("a.hpp", "int a();\nint b();\n")
	if _, hit, _ := c.TranslationUnit(key, Validator(fs2), build); hit {
		t.Fatal("edited dependency must miss")
	}

	// Creating a file where a negative dep recorded an absence
	// invalidates the entry (include resolution would now differ).
	fs3 := fs.Clone()
	fs3.Write("local/a.hpp", "int shadow();\n")
	if _, hit, _ := c.TranslationUnit(key, Validator(fs3), build); hit {
		t.Fatal("violated negative dep must miss")
	}
	if builds != 3 {
		t.Fatalf("builds = %d, want 3 (one per distinct input set)", builds)
	}
}

func TestTranslationUnitVariantEviction(t *testing.T) {
	c := New()
	c.MaxTUVariants = 2
	key := ConfigKey("k")
	never := func(Dep) bool { return false }
	for i := 0; i < 5; i++ {
		_, _, err := c.TranslationUnit(key, never, func() (*TU, []Dep, error) {
			return &TU{}, []Dep{{Path: "p", Hash: "h"}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := len(c.tus[key]); n > 2 {
		t.Fatalf("variants = %d, want <= 2", n)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no variant evictions recorded")
	}
}

func TestTranslationUnitErrorNotCached(t *testing.T) {
	c := New()
	key := ConfigKey("k")
	boom := errors.New("boom")
	always := func(Dep) bool { return true }
	if _, _, err := c.TranslationUnit(key, always, func() (*TU, []Dep, error) {
		return nil, nil, boom
	}); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, hit, err := c.TranslationUnit(key, always, func() (*TU, []Dep, error) {
		return &TU{}, nil, nil
	}); err != nil || hit {
		t.Fatalf("after failure: hit=%v err=%v, want fresh build", hit, err)
	}
}

func TestTranslationUnitSingleflight(t *testing.T) {
	c := New()
	key := ConfigKey("k")
	var builds atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, _, err := c.TranslationUnit(key, func(Dep) bool { return true }, func() (*TU, []Dep, error) {
				builds.Add(1)
				return &TU{}, []Dep{{Path: "p", Hash: "h"}}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	st := c.Stats()
	if st.TUMisses != 1 || st.TUHits != 7 {
		t.Fatalf("stats = %+v, want 1 miss / 7 hits", st)
	}
}

func TestFileKeyAndConfigKey(t *testing.T) {
	if FileKey("a", "x") == FileKey("b", "x") {
		t.Fatal("path must participate in FileKey")
	}
	if FileKey("a", "x") == FileKey("a", "y") {
		t.Fatal("content must participate in FileKey")
	}
	// The separator must prevent boundary ambiguity.
	if ConfigKey("ab", "c") == ConfigKey("a", "bc") {
		t.Fatal("ConfigKey parts must be delimited")
	}
}

func TestTranslationUnitGlobalLRUEviction(t *testing.T) {
	c := New()
	c.MaxTUEntries = 2
	always := func(Dep) bool { return true }
	add := func(name string) {
		t.Helper()
		built := false
		_, cached, err := c.TranslationUnit(ConfigKey(name), always, func() (*TU, []Dep, error) {
			built = true
			return &TU{Aux: name}, []Dep{{Path: name, Hash: "h"}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !built || cached {
			t.Fatalf("%s: expected a fresh build", name)
		}
	}
	hit := func(name string) bool {
		t.Helper()
		val, cached, err := c.TranslationUnit(ConfigKey(name), always, func() (*TU, []Dep, error) {
			return &TU{Aux: name}, []Dep{{Path: name, Hash: "h"}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if cached && val.Aux != name {
			t.Fatalf("%s: wrong entry served", name)
		}
		return cached
	}

	add("a")
	add("b")
	if !hit("a") { // refresh a's recency: LRU order is now b, a
		t.Fatal("a should be cached")
	}
	add("c") // cap 2: evicts b, the least recently used
	if !hit("a") {
		t.Fatal("recently-used a was evicted")
	}
	if !hit("c") {
		t.Fatal("newest entry c was evicted")
	}
	if hit("b") {
		t.Fatal("LRU entry b survived past the cap")
	}
	if ev := c.Stats().Evictions; ev < 2 {
		t.Fatalf("Evictions = %d, want >= 2 (b evicted, then an entry for b's rebuild)", ev)
	}
}

func TestTranslationUnitLRUEvictionCounterInRegistry(t *testing.T) {
	c := New()
	c.MaxTUEntries = 1
	reg := obs.NewRegistry()
	c.AttachMetrics(obs.New(nil, reg))
	always := func(Dep) bool { return true }
	for _, name := range []string{"a", "b", "c"} {
		if _, _, err := c.TranslationUnit(ConfigKey(name), always, func() (*TU, []Dep, error) {
			return &TU{}, nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	want := c.Stats().Evictions
	if want == 0 {
		t.Fatal("no evictions happened")
	}
	if got := reg.Counter("buildcache.evictions").Value(); got != want {
		t.Fatalf("registry evictions = %d, Stats().Evictions = %d", got, want)
	}
}

func TestTranslationUnitLRUDisabledByDefault(t *testing.T) {
	c := New()
	always := func(Dep) bool { return true }
	for i := 0; i < 50; i++ {
		if _, _, err := c.TranslationUnit(ConfigKey(fmt.Sprintf("k%d", i)), always, func() (*TU, []Dep, error) {
			return &TU{}, nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("evictions with no cap set: %d", ev)
	}
	if n := c.tuLRU.Len(); n != 50 {
		t.Fatalf("LRU tracks %d entries, want 50", n)
	}
}
