package buildcache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpp/lexer"
	"repro/internal/cpp/preprocessor"
	"repro/internal/vfs"
)

func TestTokenRoundTrip(t *testing.T) {
	const src = "#define N 3\nint add(int a, int b) { return a + b + N; }\n// done\n"
	toks, err := lexer.Tokenize("a.cpp", src)
	if err != nil {
		t.Fatal(err)
	}
	payload := EncodeTokens(toks)
	got, err := DecodeTokens(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(toks, got) {
		t.Fatalf("round trip differs:\n got %v\nwant %v", got, toks)
	}
	// Same process, same intern tables: symbols and file IDs must have
	// re-interned to identical values.
	for i := range toks {
		if toks[i].Sym != got[i].Sym || toks[i].Pos.File != got[i].Pos.File {
			t.Fatalf("token %d re-interned differently: %+v vs %+v", i, toks[i], got[i])
		}
	}
}

func TestTokenEncodeDeterministic(t *testing.T) {
	toks, err := lexer.Tokenize("a.cpp", "int x = 1; int y = x;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeTokens(toks), EncodeTokens(toks)) {
		t.Fatal("encoding is not deterministic")
	}
}

// realTU preprocesses a small program with macro tracking on so every
// Result field is populated, and returns the TU plus its manifest.
func realTU(t *testing.T) (*TU, []Dep) {
	t.Helper()
	fs := vfs.New()
	fs.Write("main.cpp", "#include \"a.hpp\"\n#include <missing.h>\nint main() { return N + a(); }\n")
	fs.Write("lib/a.hpp", "#pragma once\n#define N 3\n#define SQ(x) ((x)*(x))\nint a();\nint nine = SQ(N);\n")
	pp := preprocessor.New(fs, "lib")
	pp.TrackMacros = true
	res, err := pp.Preprocess("main.cpp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MacroDefs) == 0 || len(res.MacroUses) == 0 {
		t.Fatal("test program exercised no macro tracking")
	}
	if len(res.MissingIncludes) == 0 || len(res.AbsentDeps) == 0 {
		t.Fatal("test program exercised no negative probes")
	}
	return &TU{Result: res}, Manifest(fs, "main.cpp", res)
}

func TestTURoundTrip(t *testing.T) {
	tu, deps := realTU(t)
	payload, err := EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	got, gotDeps, err := DecodeTU(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tu.Result, got.Result) {
		t.Fatalf("preprocessor result differs after round trip:\n got %+v\nwant %+v", got.Result, tu.Result)
	}
	if !reflect.DeepEqual(deps, gotDeps) {
		t.Fatalf("manifest differs after round trip:\n got %+v\nwant %+v", gotDeps, deps)
	}
	if got.AST != nil {
		t.Fatal("decode parsed eagerly; the AST must be lazy")
	}
	if got.Aux != nil {
		t.Fatal("no codec matched, so Aux must decode to nil")
	}
	unit := got.Unit()
	if unit == nil {
		t.Fatal("Unit() did not re-parse the decoded stream")
	}
	if again := got.Unit(); again != unit {
		t.Fatal("Unit() re-parsed instead of memoizing")
	}
	want := tu.Unit()
	if len(unit.Decls) != len(want.Decls) {
		t.Fatalf("lazy re-parse found %d decls, builder had %d", len(unit.Decls), len(want.Decls))
	}
}

// testAux exercises the codec registry without depending on any real
// Aux type; the blob is the value byte repeated three times so the
// decoder can detect tampering.
type testAux struct{ V byte }

func init() {
	RegisterAux(AuxCodec{
		Name: "buildcache.testaux/1",
		Encode: func(aux any) ([]byte, bool) {
			ta, ok := aux.(testAux)
			if !ok {
				return nil, false
			}
			return []byte{ta.V, ta.V, ta.V}, true
		},
		Decode: func(blob []byte) (any, error) {
			if len(blob) != 3 || blob[0] != blob[1] || blob[1] != blob[2] {
				return nil, fmt.Errorf("malformed testaux blob %v", blob)
			}
			return testAux{V: blob[0]}, nil
		},
	})
}

func TestTUAuxRoundTrip(t *testing.T) {
	tu, deps := realTU(t)
	tu.Aux = testAux{V: 7}
	payload, err := EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeTU(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Aux != (testAux{V: 7}) {
		t.Fatalf("Aux did not round trip: %#v", got.Aux)
	}

	// An Aux type no codec claims is dropped at encode time, not an
	// error: the receiver re-derives.
	tu.Aux = struct{ X int }{1}
	payload, err = EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err = DecodeTU(payload); err != nil || got.Aux != nil {
		t.Fatalf("unclaimed Aux: got %#v, err %v; want nil, nil", got.Aux, err)
	}
}

// TestTUAuxUnknownCodecDegrades simulates a receiving node without the
// sender's codec: the entry must still adopt, with a nil Aux.
func TestTUAuxUnknownCodecDegrades(t *testing.T) {
	tu, deps := realTU(t)
	tu.Aux = testAux{V: 3}
	payload, err := EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	auxMu.Lock()
	saved := auxCodecs
	auxCodecs = nil
	auxMu.Unlock()
	defer func() {
		auxMu.Lock()
		auxCodecs = saved
		auxMu.Unlock()
	}()
	got, _, err := DecodeTU(payload)
	if err != nil {
		t.Fatalf("unknown codec must degrade to nil Aux, got error: %v", err)
	}
	if got.Aux != nil {
		t.Fatalf("Aux = %#v, want nil without the codec", got.Aux)
	}
}

// TestTUAuxCorruptBlobRejected swaps in a codec whose blob the decoder
// rejects: a registered codec failing on its own name is corruption,
// and the whole payload must be refused.
func TestTUAuxCorruptBlobRejected(t *testing.T) {
	tu, deps := realTU(t)
	tu.Aux = testAux{V: 0xEB} // three 0xEB bytes: a needle ASCII payloads can't contain
	payload, err := EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one aux byte and re-seal the integrity trailer so only the
	// codec can notice.
	broken := append([]byte(nil), payload[:len(payload)-hashLen]...)
	at := bytes.Index(broken, []byte{0xEB, 0xEB, 0xEB})
	if at < 0 {
		t.Fatal("aux blob not found in payload")
	}
	broken[at+1] ^= 0xff
	sum := sha256.Sum256(broken)
	broken = append(broken, sum[:]...)
	if _, _, err := DecodeTU(broken); err == nil || !strings.Contains(err.Error(), "aux codec") {
		t.Fatalf("corrupt aux blob decoded; err = %v", err)
	}
}

func TestTUEncodeDeterministic(t *testing.T) {
	tu, deps := realTU(t)
	a, err := EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("TU encoding is not deterministic (map iteration leaked in?)")
	}
}

func TestEncodeTURequiresResult(t *testing.T) {
	if _, err := EncodeTU(&TU{}, nil); err == nil {
		t.Fatal("nil Result must not encode")
	}
	if _, err := EncodeTU(nil, nil); err == nil {
		t.Fatal("nil TU must not encode")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tu, deps := realTU(t)
	tuPayload, err := EncodeTU(tu, deps)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := lexer.Tokenize("a.cpp", "int x;\n")
	if err != nil {
		t.Fatal(err)
	}
	tokPayload := EncodeTokens(toks)

	check := func(name string, payload []byte, decodeTok bool, wantErr string) {
		t.Helper()
		var derr error
		if decodeTok {
			_, derr = DecodeTokens(payload)
		} else {
			_, _, derr = DecodeTU(payload)
		}
		if derr == nil {
			t.Fatalf("%s: corrupt payload decoded cleanly", name)
		}
		if wantErr != "" && !strings.Contains(derr.Error(), wantErr) {
			t.Fatalf("%s: err = %v, want substring %q", name, derr, wantErr)
		}
	}

	// Bit flips anywhere in the body fail the integrity hash.
	for _, at := range []int{0, 5, len(tokPayload) / 2, len(tokPayload) - hashLen - 1} {
		flipped := append([]byte(nil), tokPayload...)
		flipped[at] ^= 0x40
		check("tok bit flip", flipped, true, "integrity hash")
	}
	flipped := append([]byte(nil), tuPayload...)
	flipped[len(tuPayload)/3] ^= 0x01
	check("tu bit flip", flipped, false, "integrity hash")

	// A flipped trailer byte is the same rejection from the other side.
	flipped = append([]byte(nil), tuPayload...)
	flipped[len(flipped)-1] ^= 0xff
	check("tu trailer flip", flipped, false, "integrity hash")

	// Truncations: mid-body fails the hash, shorter than the fixed
	// framing fails the length check.
	check("tok truncated body", tokPayload[:len(tokPayload)-hashLen-3], true, "")
	check("tu truncated body", tuPayload[:len(tuPayload)/2], false, "")
	check("tiny", tokPayload[:7], true, "truncated")
	check("empty", nil, true, "truncated")

	// A valid payload of the wrong kind is rejected by magic, not
	// misdecoded: namespaces can never cross.
	check("tok decoded as TU", tokPayload, false, "magic")
	check("tu decoded as tokens", tuPayload, true, "magic")
}
