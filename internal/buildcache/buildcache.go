// Package buildcache is a content-addressed compilation cache for the
// simulation substrate. Real builds of the paper's corpora re-lex and
// re-parse the same ~580 corpus headers for every translation unit of
// every subject and mode; this package memoizes that redundant work the
// same way ccache/sccache do for real compilers, at two granularities:
//
//   - Token streams: one lexed token stream per distinct (path, content)
//     pair, shared read-only by every preprocessor run in the process.
//   - Translation units: the preprocessed token stream, parsed AST, and
//     caller-supplied statistics of a whole TU, keyed by the compilation
//     configuration (main file, search paths, defines) and validated
//     against a recorded dependency manifest — every file the preprocess
//     read (by content hash) and every include-resolution probe that
//     missed (which must still miss). This is ccache's "direct mode":
//     a hit is only served when byte-identical inputs guarantee a
//     byte-identical result.
//
// Only real wall-clock time changes; cached entries are exactly what a
// cold run would recompute, so all virtual-time outputs (Tables 2–3,
// Figures 7–10) stay byte-identical with the cache on or off.
//
// Cached token slices and ASTs are shared across goroutines and must be
// treated as immutable by all consumers.
package buildcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/cpp/ast"
	"repro/internal/cpp/preprocessor"
	"repro/internal/cpp/token"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Stats counts cache traffic. BytesSaved is source bytes that were not
// re-lexed thanks to token-stream hits; TokensSaved is TU tokens that
// were not re-preprocessed/re-parsed thanks to translation-unit hits.
//
// With a remote Backend attached the cache is tiered: TUMisses counts
// only entries this process built itself, and RemoteTUHits counts
// entries adopted from the remote tier — the two are disjoint, and
// their sum is the process's cold-path traffic. Summing TUMisses
// across a fleet therefore gives the fleet-wide compile count, which
// is how the farm loadgen proves a cold miss compiled exactly once.
type Stats struct {
	TokenHits   uint64
	TokenMisses uint64
	TUHits      uint64
	TUMisses    uint64
	Evictions   uint64
	BytesSaved  uint64
	TokensSaved uint64
	// EvictedBytes is the estimated size of TU entries evicted by the
	// MaxBytes cap.
	EvictedBytes uint64

	// Remote (L2) tier traffic; all zero when no Backend is attached.
	RemoteTokenHits uint64
	RemoteTUHits    uint64
	RemoteMisses    uint64
	RemotePuts      uint64
	RemoteErrors    uint64
	// LeaseGrants counts cross-node singleflight leases this process
	// won (it built and published); LeaseWaits counts leases it lost —
	// another node was building, and this process waited instead of
	// duplicating the compile.
	LeaseGrants uint64
	LeaseWaits  uint64
}

// String renders the stats for -v style diagnostics.
func (s Stats) String() string {
	str := fmt.Sprintf("buildcache: tokens %d hit / %d miss, TUs %d hit / %d miss, %d evicted, %.1f MB source re-lex avoided, %d tokens re-parse avoided",
		s.TokenHits, s.TokenMisses, s.TUHits, s.TUMisses, s.Evictions,
		float64(s.BytesSaved)/1e6, s.TokensSaved)
	if s.RemoteTokenHits+s.RemoteTUHits+s.RemoteMisses+s.RemotePuts+s.RemoteErrors > 0 {
		str += fmt.Sprintf("; remote: %d token hits, %d TU hits, %d misses, %d puts, %d errors, leases %d won / %d waited",
			s.RemoteTokenHits, s.RemoteTUHits, s.RemoteMisses, s.RemotePuts, s.RemoteErrors,
			s.LeaseGrants, s.LeaseWaits)
	}
	return str
}

// TU is one cached translation-unit frontend result: everything about a
// compile that depends only on the source text, not on the cost model,
// optimization level, or PCH configuration.
type TU struct {
	// Result is the full preprocessor output (token stream, include list,
	// LOC). Shared; read-only.
	Result *preprocessor.Result
	// AST is the parsed translation unit as built by a local frontend
	// run. Shared; read-only. Entries adopted from the remote tier leave
	// it nil — the wire format does not carry ASTs — and consumers that
	// genuinely need the tree call Unit(), which re-parses on demand.
	AST *ast.TranslationUnit
	// Aux carries caller-supplied derived data (e.g. compilesim's
	// declaration/instantiation counts) so it is not recomputed on hits.
	// Aux travels through the remote tier when its type has a registered
	// AuxCodec, which is what lets an adopted entry skip the re-parse
	// entirely: the statistics arrive with the tokens.
	Aux any

	// lazyOnce/lazyAST back Unit()'s on-demand re-parse for adopted
	// entries; AST itself is never written after construction, so plain
	// reads of it stay race-free.
	lazyOnce sync.Once
	lazyAST  *ast.TranslationUnit
}

// Dep is one entry of a TU's dependency manifest. Hash is the content
// hash the file had when the entry was built; an empty Hash records a
// negative dependency — an include-resolution probe that found no file
// and must still find none for the entry to be valid.
type Dep struct {
	Path string
	Hash string
}

// DefaultMaxTokenEntries bounds the token-stream map; when exceeded the
// completed entries are flushed (a generational eviction, like ccache's
// size-triggered cleanup).
const DefaultMaxTokenEntries = 8192

// DefaultMaxTUVariants bounds how many differing-manifest variants are
// kept per configuration key (oldest evicted first).
const DefaultMaxTUVariants = 8

type lexEntry struct {
	done chan struct{}
	toks []token.Token
	err  error
}

type tuEntry struct {
	key  string
	deps []Dep
	val  *TU
	// bytes is the entry's estimated in-memory size, charged against
	// MaxBytes when that cap is set.
	bytes int
	// elem is the entry's node in the cache's LRU list (front = most
	// recently used); nil once evicted.
	elem *list.Element
}

// tuSizeEstimate approximates an entry's resident size: the token
// stream dominates (struct overhead plus spelling bytes), with the
// include/dependency strings and a fixed slop for the AST on top. An
// estimate is enough — MaxBytes is an ops guardrail, not an allocator.
func tuSizeEstimate(val *TU, deps []Dep) int {
	// 40-byte Token struct plus the arena'd AST node it typically
	// expands into.
	const perToken = 96
	n := 512
	if val != nil && val.Result != nil {
		res := val.Result
		n += len(res.Tokens) * perToken
		for i := range res.Tokens {
			n += len(res.Tokens[i].Text)
		}
		for _, s := range res.Includes {
			n += len(s) + 16
		}
		for _, s := range res.AbsentDeps {
			n += len(s) + 16
		}
	}
	for _, d := range deps {
		n += len(d.Path) + len(d.Hash) + 32
	}
	return n
}

type flight struct {
	done chan struct{}
}

// instruments are the cache's registered metric handles. All fields are
// nil-safe no-ops until AttachMetrics resolves them, and they are
// incremented at exactly the sites the internal Stats counters are, so
// a metrics snapshot always matches Stats().
type instruments struct {
	tokenHits    *obs.Counter
	tokenMisses  *obs.Counter
	tuHits       *obs.Counter
	tuMisses     *obs.Counter
	evictions    *obs.Counter
	evictedBytes *obs.Counter
	bytesSaved   *obs.Counter
	tokensSaved  *obs.Counter
	singleflight *obs.Counter

	remoteTokenHits *obs.Counter
	remoteTUHits    *obs.Counter
	remoteMisses    *obs.Counter
	remotePuts      *obs.Counter
	remoteErrors    *obs.Counter
	leaseGrants     *obs.Counter
	leaseWaits      *obs.Counter

	// Per-tier latency histograms (wall-clock ms): how long a TU
	// frontend took to come from the local tier, the remote tier, or a
	// compile. Recorded only when a remote Backend is attached, so the
	// metric goldens of remote-less runs stay byte-stable.
	tierL1      *obs.Histogram
	tierL2      *obs.Histogram
	tierCompile *obs.Histogram
}

// Cache is a process-wide build cache, safe for concurrent use. The zero
// value is not usable; call New.
type Cache struct {
	mu        sync.Mutex
	lex       map[string]*lexEntry
	tus       map[string][]*tuEntry
	tuLRU     *list.List // of *tuEntry; front = most recently used
	tuFlights map[string]*flight
	stats     Stats
	ins       instruments

	// MaxTokenEntries and MaxTUVariants override the eviction bounds;
	// set them before first use.
	MaxTokenEntries int
	MaxTUVariants   int
	// MaxTUEntries, when > 0, caps the total number of cached translation
	// units across all configuration keys with least-recently-used
	// eviction (hits refresh recency). The default 0 keeps the historical
	// unbounded behavior — fine for one-shot harness runs, a real leak
	// for a long-lived daemon, which sets this. Set before first use.
	MaxTUEntries int
	// MaxBytes, when > 0, caps the estimated resident size of cached
	// translation units (see tuSizeEstimate) with the same LRU policy,
	// composing with MaxTUEntries: whichever bound trips first evicts.
	// Evicted bytes are counted in Stats.EvictedBytes and the
	// buildcache.evicted_bytes registry counter. Set before first use.
	MaxBytes int
	// Remote, when set, is the shared L2 tier: local misses consult it
	// before building, local builds publish to it, and whole-TU misses
	// coordinate through its lease so a fleet-wide cold miss compiles
	// exactly once. Set before first use. Every Backend error degrades
	// to a local-only build; the cache never fails a request because
	// the remote tier is down.
	Remote Backend

	// tuBytes is the estimated resident size of all cached TU entries.
	tuBytes int
}

// New returns an empty cache with default eviction bounds.
func New() *Cache {
	return &Cache{
		lex:             map[string]*lexEntry{},
		tus:             map[string][]*tuEntry{},
		tuLRU:           list.New(),
		tuFlights:       map[string]*flight{},
		MaxTokenEntries: DefaultMaxTokenEntries,
		MaxTUVariants:   DefaultMaxTUVariants,
	}
}

var defaultCache = New()

// Default returns the shared process-wide cache.
func Default() *Cache { return defaultCache }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AttachMetrics registers the cache's named instruments
// (buildcache.token.hits, buildcache.tu.misses, …) in the handle's
// registry. Counters accumulate from attach time; attach before first
// use for totals that match Stats(). A nil handle detaches nothing and
// does nothing.
func (c *Cache) AttachMetrics(o *obs.Obs) {
	if o == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ins = instruments{
		tokenHits:    o.Counter("buildcache.token.hits"),
		tokenMisses:  o.Counter("buildcache.token.misses"),
		tuHits:       o.Counter("buildcache.tu.hits"),
		tuMisses:     o.Counter("buildcache.tu.misses"),
		evictions:    o.Counter("buildcache.evictions"),
		evictedBytes: o.Counter("buildcache.evicted_bytes"),
		bytesSaved:   o.Counter("buildcache.bytes_saved"),
		tokensSaved:  o.Counter("buildcache.tokens_saved"),
		singleflight: o.Counter("buildcache.singleflight.dedup"),
	}
	if c.Remote != nil {
		// Remote-tier instruments exist only on tiered caches, so the
		// metric snapshots of remote-less runs are unchanged by the
		// farm's existence.
		c.ins.remoteTokenHits = o.Counter("buildcache.remote.token_hits")
		c.ins.remoteTUHits = o.Counter("buildcache.remote.tu_hits")
		c.ins.remoteMisses = o.Counter("buildcache.remote.misses")
		c.ins.remotePuts = o.Counter("buildcache.remote.puts")
		c.ins.remoteErrors = o.Counter("buildcache.remote.errors")
		c.ins.leaseGrants = o.Counter("buildcache.lease.grants")
		c.ins.leaseWaits = o.Counter("buildcache.lease.waits")
		c.ins.tierL1 = o.Metrics().Histogram("buildcache.tier.l1_ms")
		c.ins.tierL2 = o.Metrics().Histogram("buildcache.tier.l2_ms")
		c.ins.tierCompile = o.Metrics().Histogram("buildcache.tier.compile_ms")
	}
}

// FileKey is the content-addressed identity of one file: path and
// content both participate, so two files with equal content but
// different paths (whose tokens carry different positions) never share
// an entry, and a rewritten file under the same path never serves stale
// tokens.
func FileKey(path, content string) string {
	h := sha256.New()
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write([]byte(content))
	return hex.EncodeToString(h.Sum(nil))
}

// ConfigKey hashes an ordered list of configuration strings (main file,
// search paths, defines) into a TU cache key.
func ConfigKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Tokens returns the memoized token stream for (path, content), calling
// lex on the first request. Concurrent requests for the same file wait
// for the single in-flight lex (singleflight) instead of duplicating it.
// The returned slice is shared and must not be mutated.
func (c *Cache) Tokens(path, content string, lex func() ([]token.Token, error)) ([]token.Token, error) {
	key := FileKey(path, content)
	c.mu.Lock()
	if e, ok := c.lex[key]; ok {
		ins := c.ins
		c.mu.Unlock()
		select {
		case <-e.done:
		default:
			// In-flight elsewhere: we are a deduplicated waiter, not a
			// plain hit on a completed entry.
			ins.singleflight.Add(1)
		}
		<-e.done
		if e.err == nil {
			c.mu.Lock()
			c.stats.TokenHits++
			c.stats.BytesSaved += uint64(len(content))
			c.mu.Unlock()
			ins.tokenHits.Add(1)
			ins.bytesSaved.Add(uint64(len(content)))
			return e.toks, nil
		}
		return e.toks, e.err
	}
	c.evictTokensLocked()
	e := &lexEntry{done: make(chan struct{})}
	c.lex[key] = e
	c.stats.TokenMisses++
	c.ins.tokenMisses.Add(1)
	c.mu.Unlock()

	e.toks, e.err = c.lexOrRemote(key, lex)
	close(e.done)
	if e.err != nil {
		// Do not cache failures; a corpus fix under the same key must
		// re-lex. Waiters already hold the entry and see the error.
		c.mu.Lock()
		delete(c.lex, key)
		c.mu.Unlock()
	}
	return e.toks, e.err
}

// The count helpers keep the internal Stats field and its mirrored
// registry counter in lockstep, exactly like the inline sites for the
// local-tier counters.

func (c *Cache) countRemoteError() {
	c.mu.Lock()
	c.stats.RemoteErrors++
	ctr := c.ins.remoteErrors
	c.mu.Unlock()
	ctr.Add(1)
}

func (c *Cache) countRemoteMiss() {
	c.mu.Lock()
	c.stats.RemoteMisses++
	ctr := c.ins.remoteMisses
	c.mu.Unlock()
	ctr.Add(1)
}

func (c *Cache) countRemotePut() {
	c.mu.Lock()
	c.stats.RemotePuts++
	ctr := c.ins.remotePuts
	c.mu.Unlock()
	ctr.Add(1)
}

// lexOrRemote is the token-stream builder path: consult the remote tier
// before lexing, publish to it after. The key is content-addressed
// (path + content hash), so a remote payload that decodes cleanly is
// valid by construction — no manifest to check.
func (c *Cache) lexOrRemote(key string, lex func() ([]token.Token, error)) ([]token.Token, error) {
	if c.Remote == nil {
		return lex()
	}
	payload, ok, err := c.Remote.Get(NSTokens, key)
	switch {
	case err != nil:
		c.countRemoteError()
	case ok:
		toks, derr := DecodeTokens(payload)
		if derr == nil {
			c.mu.Lock()
			c.stats.RemoteTokenHits++
			ctr := c.ins.remoteTokenHits
			c.mu.Unlock()
			ctr.Add(1)
			return toks, nil
		}
		// Corrupt payload: count and fall through to a local lex.
		c.countRemoteError()
	default:
		c.countRemoteMiss()
	}
	toks, lerr := lex()
	if lerr == nil {
		if perr := c.Remote.Put(NSTokens, key, EncodeTokens(toks)); perr != nil {
			c.countRemoteError()
		} else {
			c.countRemotePut()
		}
	}
	return toks, lerr
}

// evictTokensLocked flushes completed token entries once the map exceeds
// its bound. In-flight entries are kept: their builders still hold them.
func (c *Cache) evictTokensLocked() {
	max := c.MaxTokenEntries
	if max <= 0 {
		max = DefaultMaxTokenEntries
	}
	if len(c.lex) < max {
		return
	}
	for k, e := range c.lex {
		select {
		case <-e.done:
			delete(c.lex, k)
			c.stats.Evictions++
			c.ins.evictions.Add(1)
		default:
		}
	}
}

// TranslationUnit returns a cached TU for the configuration key whose
// dependency manifest validates (every Dep with a Hash must report the
// same hash via valid; every Dep without one must still be absent), or
// builds one. build returns the TU plus the manifest to record. The
// returned bool reports whether the result came from the cache.
//
// Concurrent misses on the same key are deduplicated: one caller builds,
// the others wait and re-validate (their filesystems may differ, in
// which case they build their own variant).
func (c *Cache) TranslationUnit(key string, valid func(Dep) bool, build func() (*TU, []Dep, error)) (*TU, bool, error) {
	start := time.Now()
	for {
		c.mu.Lock()
		entries := append([]*tuEntry(nil), c.tus[key]...)
		fl := c.tuFlights[key]
		c.mu.Unlock()

		for _, e := range entries {
			if depsValid(e.deps, valid) {
				c.mu.Lock()
				c.stats.TUHits++
				if e.val.Result != nil {
					c.stats.TokensSaved += uint64(len(e.val.Result.Tokens))
				}
				if e.elem != nil {
					// Refresh recency; a no-op if the entry was evicted
					// between the snapshot above and taking the lock.
					c.tuLRU.MoveToFront(e.elem)
				}
				ins := c.ins
				c.mu.Unlock()
				ins.tuHits.Add(1)
				if e.val.Result != nil {
					ins.tokensSaved.Add(uint64(len(e.val.Result.Tokens)))
				}
				ins.tierL1.ObserveDuration(time.Since(start))
				return e.val, true, nil
			}
		}
		if fl != nil {
			c.mu.Lock()
			c.ins.singleflight.Add(1)
			c.mu.Unlock()
			<-fl.done
			continue // someone just built this key; re-validate
		}

		c.mu.Lock()
		if fl2 := c.tuFlights[key]; fl2 != nil {
			c.ins.singleflight.Add(1)
			c.mu.Unlock()
			<-fl2.done
			continue
		}
		mine := &flight{done: make(chan struct{})}
		c.tuFlights[key] = mine
		c.mu.Unlock()

		// This goroutine owns the node-local build for the key; with a
		// remote tier attached it first tries L2, and coordinates the
		// actual build through the fleet-wide lease.
		val, deps, fromRemote, err := c.buildOrRemoteTU(key, valid, build)
		c.mu.Lock()
		delete(c.tuFlights, key)
		if err == nil {
			if fromRemote {
				c.stats.RemoteTUHits++
				c.ins.remoteTUHits.Add(1)
			} else {
				c.stats.TUMisses++
				c.ins.tuMisses.Add(1)
			}
			e := &tuEntry{key: key, deps: deps, val: val, bytes: tuSizeEstimate(val, deps)}
			e.elem = c.tuLRU.PushFront(e)
			c.tus[key] = append(c.tus[key], e)
			c.tuBytes += e.bytes
			maxVar := c.MaxTUVariants
			if maxVar <= 0 {
				maxVar = DefaultMaxTUVariants
			}
			// Per-key variant bound (oldest variant first), then the
			// optional global bounds: entry count and estimated bytes.
			// The byte loop keeps at least the entry just inserted — a
			// single TU larger than MaxBytes caches alone rather than
			// thrashing.
			for len(c.tus[key]) > maxVar {
				c.evictTULocked(c.tus[key][0])
			}
			for c.MaxTUEntries > 0 && c.tuLRU.Len() > c.MaxTUEntries {
				c.evictTULocked(c.tuLRU.Back().Value.(*tuEntry))
			}
			for c.MaxBytes > 0 && c.tuBytes > c.MaxBytes && c.tuLRU.Len() > 1 {
				c.evictTULocked(c.tuLRU.Back().Value.(*tuEntry))
			}
		}
		c.mu.Unlock()
		close(mine.done)
		return val, fromRemote, err
	}
}

// remoteFetchTU tries to satisfy a TU miss from the remote tier: fetch,
// integrity-check, decode (which re-parses the AST), then validate the
// embedded dependency manifest against the local filesystem. Any
// failure — transport, corruption, stale manifest — is a miss.
func (c *Cache) remoteFetchTU(key string, valid func(Dep) bool) (*TU, []Dep, bool) {
	start := time.Now()
	payload, ok, err := c.Remote.Get(NSTU, key)
	if err != nil {
		c.countRemoteError()
		return nil, nil, false
	}
	if !ok {
		c.countRemoteMiss()
		return nil, nil, false
	}
	tu, deps, err := DecodeTU(payload)
	if err != nil {
		c.countRemoteError()
		return nil, nil, false
	}
	if !depsValid(deps, valid) {
		// The fleet's entry was built against different file contents
		// (another session's overlay); for us it is a miss.
		c.countRemoteMiss()
		return nil, nil, false
	}
	c.mu.Lock()
	ins := c.ins
	c.mu.Unlock()
	ins.tierL2.ObserveDuration(time.Since(start))
	return tu, deps, true
}

// publishTU encodes and publishes a locally built entry. Publishing
// also releases the fleet lease on the key (Put implies release); if
// the entry cannot travel or the put fails, the lease is released
// explicitly so waiting nodes unblock and build their own.
func (c *Cache) publishTU(key string, val *TU, deps []Dep) {
	payload, err := EncodeTU(val, deps)
	if err == nil {
		if perr := c.Remote.Put(NSTU, key, payload); perr == nil {
			c.countRemotePut()
			return
		}
		c.countRemoteError()
	}
	if uerr := c.Remote.Unlease(NSTU, key); uerr != nil {
		c.countRemoteError()
	}
}

// buildOrRemoteTU resolves a node-local TU miss against the remote
// tier: L2 fetch first, then the fleet-wide lease — the winner builds
// and publishes, losers wait for the release and re-fetch, and every
// backend failure degrades to a plain local build.
func (c *Cache) buildOrRemoteTU(key string, valid func(Dep) bool, build func() (*TU, []Dep, error)) (*TU, []Dep, bool, error) {
	if c.Remote == nil {
		val, deps, err := build()
		return val, deps, false, err
	}
	if tu, deps, ok := c.remoteFetchTU(key, valid); ok {
		return tu, deps, true, nil
	}

	timedBuild := func() (*TU, []Dep, error) {
		start := time.Now()
		val, deps, err := build()
		if err == nil {
			c.mu.Lock()
			ins := c.ins
			c.mu.Unlock()
			ins.tierCompile.ObserveDuration(time.Since(start))
		}
		return val, deps, err
	}

	st, err := c.Remote.Lease(NSTU, key)
	if err != nil {
		c.countRemoteError()
		st = LeaseUnavailable
	}
	switch st {
	case LeaseGranted:
		c.mu.Lock()
		c.stats.LeaseGrants++
		ctr := c.ins.leaseGrants
		c.mu.Unlock()
		ctr.Add(1)
		val, deps, err := timedBuild()
		if err != nil {
			if uerr := c.Remote.Unlease(NSTU, key); uerr != nil {
				c.countRemoteError()
			}
			return nil, nil, false, err
		}
		c.publishTU(key, val, deps)
		return val, deps, false, nil

	case LeaseReleased:
		// Another node built while we waited: its compile, not ours.
		c.mu.Lock()
		c.stats.LeaseWaits++
		ctr := c.ins.leaseWaits
		c.mu.Unlock()
		ctr.Add(1)
		if tu, deps, ok := c.remoteFetchTU(key, valid); ok {
			return tu, deps, true, nil
		}
		// The published variant does not validate against our tree
		// (different overlay contents): build our own and publish it.
		val, deps, err := timedBuild()
		if err != nil {
			return nil, nil, false, err
		}
		c.publishTU(key, val, deps)
		return val, deps, false, nil

	default: // LeaseUnavailable
		val, deps, err := timedBuild()
		if err != nil {
			return nil, nil, false, err
		}
		c.publishTU(key, val, deps)
		return val, deps, false, nil
	}
}

// evictTULocked removes one TU entry from the LRU list and its key's
// variant slice, counting the eviction. Caller holds c.mu.
func (c *Cache) evictTULocked(e *tuEntry) {
	if e.elem != nil {
		c.tuLRU.Remove(e.elem)
		e.elem = nil
	}
	s := c.tus[e.key]
	for i, x := range s {
		if x == e {
			c.tus[e.key] = append(s[:i], s[i+1:]...)
			break
		}
	}
	if len(c.tus[e.key]) == 0 {
		delete(c.tus, e.key)
	}
	c.tuBytes -= e.bytes
	c.stats.Evictions++
	c.stats.EvictedBytes += uint64(e.bytes)
	c.ins.evictions.Add(1)
	c.ins.evictedBytes.Add(uint64(e.bytes))
}

func depsValid(deps []Dep, valid func(Dep) bool) bool {
	for _, d := range deps {
		if !valid(d) {
			return false
		}
	}
	return true
}

// Manifest records the dependency set of a preprocessor run: the main
// file and every include by content hash, plus every missed resolution
// probe as a negative (must-stay-absent) entry.
func Manifest(fs *vfs.FS, main string, res *preprocessor.Result) []Dep {
	deps := make([]Dep, 0, len(res.Includes)+len(res.AbsentDeps)+1)
	add := func(p string) {
		if h, ok := fs.ContentHash(p); ok {
			deps = append(deps, Dep{Path: p, Hash: h})
		}
	}
	add(vfs.Clean(main))
	for _, inc := range res.Includes {
		add(inc)
	}
	for _, p := range res.AbsentDeps {
		deps = append(deps, Dep{Path: p})
	}
	return deps
}

// Validator returns a Dep validator over fs: positive deps must hash to
// the recorded value, negative deps must still be absent.
func Validator(fs *vfs.FS) func(Dep) bool {
	return func(d Dep) bool {
		if d.Hash == "" {
			return !fs.Exists(d.Path)
		}
		h, ok := fs.ContentHash(d.Path)
		return ok && h == d.Hash
	}
}
