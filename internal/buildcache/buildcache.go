// Package buildcache is a content-addressed compilation cache for the
// simulation substrate. Real builds of the paper's corpora re-lex and
// re-parse the same ~580 corpus headers for every translation unit of
// every subject and mode; this package memoizes that redundant work the
// same way ccache/sccache do for real compilers, at two granularities:
//
//   - Token streams: one lexed token stream per distinct (path, content)
//     pair, shared read-only by every preprocessor run in the process.
//   - Translation units: the preprocessed token stream, parsed AST, and
//     caller-supplied statistics of a whole TU, keyed by the compilation
//     configuration (main file, search paths, defines) and validated
//     against a recorded dependency manifest — every file the preprocess
//     read (by content hash) and every include-resolution probe that
//     missed (which must still miss). This is ccache's "direct mode":
//     a hit is only served when byte-identical inputs guarantee a
//     byte-identical result.
//
// Only real wall-clock time changes; cached entries are exactly what a
// cold run would recompute, so all virtual-time outputs (Tables 2–3,
// Figures 7–10) stay byte-identical with the cache on or off.
//
// Cached token slices and ASTs are shared across goroutines and must be
// treated as immutable by all consumers.
package buildcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/cpp/ast"
	"repro/internal/cpp/preprocessor"
	"repro/internal/cpp/token"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Stats counts cache traffic. BytesSaved is source bytes that were not
// re-lexed thanks to token-stream hits; TokensSaved is TU tokens that
// were not re-preprocessed/re-parsed thanks to translation-unit hits.
type Stats struct {
	TokenHits   uint64
	TokenMisses uint64
	TUHits      uint64
	TUMisses    uint64
	Evictions   uint64
	BytesSaved  uint64
	TokensSaved uint64
}

// String renders the stats for -v style diagnostics.
func (s Stats) String() string {
	return fmt.Sprintf("buildcache: tokens %d hit / %d miss, TUs %d hit / %d miss, %d evicted, %.1f MB source re-lex avoided, %d tokens re-parse avoided",
		s.TokenHits, s.TokenMisses, s.TUHits, s.TUMisses, s.Evictions,
		float64(s.BytesSaved)/1e6, s.TokensSaved)
}

// TU is one cached translation-unit frontend result: everything about a
// compile that depends only on the source text, not on the cost model,
// optimization level, or PCH configuration.
type TU struct {
	// Result is the full preprocessor output (token stream, include list,
	// LOC). Shared; read-only.
	Result *preprocessor.Result
	// AST is the parsed translation unit. Shared; read-only.
	AST *ast.TranslationUnit
	// Aux carries caller-supplied derived data (e.g. compilesim's
	// declaration/instantiation counts) so it is not recomputed on hits.
	Aux any
}

// Dep is one entry of a TU's dependency manifest. Hash is the content
// hash the file had when the entry was built; an empty Hash records a
// negative dependency — an include-resolution probe that found no file
// and must still find none for the entry to be valid.
type Dep struct {
	Path string
	Hash string
}

// DefaultMaxTokenEntries bounds the token-stream map; when exceeded the
// completed entries are flushed (a generational eviction, like ccache's
// size-triggered cleanup).
const DefaultMaxTokenEntries = 8192

// DefaultMaxTUVariants bounds how many differing-manifest variants are
// kept per configuration key (oldest evicted first).
const DefaultMaxTUVariants = 8

type lexEntry struct {
	done chan struct{}
	toks []token.Token
	err  error
}

type tuEntry struct {
	key  string
	deps []Dep
	val  *TU
	// elem is the entry's node in the cache's LRU list (front = most
	// recently used); nil once evicted.
	elem *list.Element
}

type flight struct {
	done chan struct{}
}

// instruments are the cache's registered metric handles. All fields are
// nil-safe no-ops until AttachMetrics resolves them, and they are
// incremented at exactly the sites the internal Stats counters are, so
// a metrics snapshot always matches Stats().
type instruments struct {
	tokenHits    *obs.Counter
	tokenMisses  *obs.Counter
	tuHits       *obs.Counter
	tuMisses     *obs.Counter
	evictions    *obs.Counter
	bytesSaved   *obs.Counter
	tokensSaved  *obs.Counter
	singleflight *obs.Counter
}

// Cache is a process-wide build cache, safe for concurrent use. The zero
// value is not usable; call New.
type Cache struct {
	mu        sync.Mutex
	lex       map[string]*lexEntry
	tus       map[string][]*tuEntry
	tuLRU     *list.List // of *tuEntry; front = most recently used
	tuFlights map[string]*flight
	stats     Stats
	ins       instruments

	// MaxTokenEntries and MaxTUVariants override the eviction bounds;
	// set them before first use.
	MaxTokenEntries int
	MaxTUVariants   int
	// MaxTUEntries, when > 0, caps the total number of cached translation
	// units across all configuration keys with least-recently-used
	// eviction (hits refresh recency). The default 0 keeps the historical
	// unbounded behavior — fine for one-shot harness runs, a real leak
	// for a long-lived daemon, which sets this. Set before first use.
	MaxTUEntries int
}

// New returns an empty cache with default eviction bounds.
func New() *Cache {
	return &Cache{
		lex:             map[string]*lexEntry{},
		tus:             map[string][]*tuEntry{},
		tuLRU:           list.New(),
		tuFlights:       map[string]*flight{},
		MaxTokenEntries: DefaultMaxTokenEntries,
		MaxTUVariants:   DefaultMaxTUVariants,
	}
}

var defaultCache = New()

// Default returns the shared process-wide cache.
func Default() *Cache { return defaultCache }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AttachMetrics registers the cache's named instruments
// (buildcache.token.hits, buildcache.tu.misses, …) in the handle's
// registry. Counters accumulate from attach time; attach before first
// use for totals that match Stats(). A nil handle detaches nothing and
// does nothing.
func (c *Cache) AttachMetrics(o *obs.Obs) {
	if o == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ins = instruments{
		tokenHits:    o.Counter("buildcache.token.hits"),
		tokenMisses:  o.Counter("buildcache.token.misses"),
		tuHits:       o.Counter("buildcache.tu.hits"),
		tuMisses:     o.Counter("buildcache.tu.misses"),
		evictions:    o.Counter("buildcache.evictions"),
		bytesSaved:   o.Counter("buildcache.bytes_saved"),
		tokensSaved:  o.Counter("buildcache.tokens_saved"),
		singleflight: o.Counter("buildcache.singleflight.dedup"),
	}
}

// FileKey is the content-addressed identity of one file: path and
// content both participate, so two files with equal content but
// different paths (whose tokens carry different positions) never share
// an entry, and a rewritten file under the same path never serves stale
// tokens.
func FileKey(path, content string) string {
	h := sha256.New()
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write([]byte(content))
	return hex.EncodeToString(h.Sum(nil))
}

// ConfigKey hashes an ordered list of configuration strings (main file,
// search paths, defines) into a TU cache key.
func ConfigKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Tokens returns the memoized token stream for (path, content), calling
// lex on the first request. Concurrent requests for the same file wait
// for the single in-flight lex (singleflight) instead of duplicating it.
// The returned slice is shared and must not be mutated.
func (c *Cache) Tokens(path, content string, lex func() ([]token.Token, error)) ([]token.Token, error) {
	key := FileKey(path, content)
	c.mu.Lock()
	if e, ok := c.lex[key]; ok {
		ins := c.ins
		c.mu.Unlock()
		select {
		case <-e.done:
		default:
			// In-flight elsewhere: we are a deduplicated waiter, not a
			// plain hit on a completed entry.
			ins.singleflight.Add(1)
		}
		<-e.done
		if e.err == nil {
			c.mu.Lock()
			c.stats.TokenHits++
			c.stats.BytesSaved += uint64(len(content))
			c.mu.Unlock()
			ins.tokenHits.Add(1)
			ins.bytesSaved.Add(uint64(len(content)))
			return e.toks, nil
		}
		return e.toks, e.err
	}
	c.evictTokensLocked()
	e := &lexEntry{done: make(chan struct{})}
	c.lex[key] = e
	c.stats.TokenMisses++
	c.ins.tokenMisses.Add(1)
	c.mu.Unlock()

	e.toks, e.err = lex()
	close(e.done)
	if e.err != nil {
		// Do not cache failures; a corpus fix under the same key must
		// re-lex. Waiters already hold the entry and see the error.
		c.mu.Lock()
		delete(c.lex, key)
		c.mu.Unlock()
	}
	return e.toks, e.err
}

// evictTokensLocked flushes completed token entries once the map exceeds
// its bound. In-flight entries are kept: their builders still hold them.
func (c *Cache) evictTokensLocked() {
	max := c.MaxTokenEntries
	if max <= 0 {
		max = DefaultMaxTokenEntries
	}
	if len(c.lex) < max {
		return
	}
	for k, e := range c.lex {
		select {
		case <-e.done:
			delete(c.lex, k)
			c.stats.Evictions++
			c.ins.evictions.Add(1)
		default:
		}
	}
}

// TranslationUnit returns a cached TU for the configuration key whose
// dependency manifest validates (every Dep with a Hash must report the
// same hash via valid; every Dep without one must still be absent), or
// builds one. build returns the TU plus the manifest to record. The
// returned bool reports whether the result came from the cache.
//
// Concurrent misses on the same key are deduplicated: one caller builds,
// the others wait and re-validate (their filesystems may differ, in
// which case they build their own variant).
func (c *Cache) TranslationUnit(key string, valid func(Dep) bool, build func() (*TU, []Dep, error)) (*TU, bool, error) {
	for {
		c.mu.Lock()
		entries := append([]*tuEntry(nil), c.tus[key]...)
		fl := c.tuFlights[key]
		c.mu.Unlock()

		for _, e := range entries {
			if depsValid(e.deps, valid) {
				c.mu.Lock()
				c.stats.TUHits++
				if e.val.Result != nil {
					c.stats.TokensSaved += uint64(len(e.val.Result.Tokens))
				}
				if e.elem != nil {
					// Refresh recency; a no-op if the entry was evicted
					// between the snapshot above and taking the lock.
					c.tuLRU.MoveToFront(e.elem)
				}
				ins := c.ins
				c.mu.Unlock()
				ins.tuHits.Add(1)
				if e.val.Result != nil {
					ins.tokensSaved.Add(uint64(len(e.val.Result.Tokens)))
				}
				return e.val, true, nil
			}
		}
		if fl != nil {
			c.mu.Lock()
			c.ins.singleflight.Add(1)
			c.mu.Unlock()
			<-fl.done
			continue // someone just built this key; re-validate
		}

		c.mu.Lock()
		if fl2 := c.tuFlights[key]; fl2 != nil {
			c.ins.singleflight.Add(1)
			c.mu.Unlock()
			<-fl2.done
			continue
		}
		mine := &flight{done: make(chan struct{})}
		c.tuFlights[key] = mine
		c.mu.Unlock()

		val, deps, err := build()
		c.mu.Lock()
		delete(c.tuFlights, key)
		if err == nil {
			c.stats.TUMisses++
			c.ins.tuMisses.Add(1)
			e := &tuEntry{key: key, deps: deps, val: val}
			e.elem = c.tuLRU.PushFront(e)
			c.tus[key] = append(c.tus[key], e)
			maxVar := c.MaxTUVariants
			if maxVar <= 0 {
				maxVar = DefaultMaxTUVariants
			}
			// Per-key variant bound (oldest variant first), then the
			// optional global LRU bound.
			for len(c.tus[key]) > maxVar {
				c.evictTULocked(c.tus[key][0])
			}
			for c.MaxTUEntries > 0 && c.tuLRU.Len() > c.MaxTUEntries {
				c.evictTULocked(c.tuLRU.Back().Value.(*tuEntry))
			}
		}
		c.mu.Unlock()
		close(mine.done)
		return val, false, err
	}
}

// evictTULocked removes one TU entry from the LRU list and its key's
// variant slice, counting the eviction. Caller holds c.mu.
func (c *Cache) evictTULocked(e *tuEntry) {
	if e.elem != nil {
		c.tuLRU.Remove(e.elem)
		e.elem = nil
	}
	s := c.tus[e.key]
	for i, x := range s {
		if x == e {
			c.tus[e.key] = append(s[:i], s[i+1:]...)
			break
		}
	}
	if len(c.tus[e.key]) == 0 {
		delete(c.tus, e.key)
	}
	c.stats.Evictions++
	c.ins.evictions.Add(1)
}

func depsValid(deps []Dep, valid func(Dep) bool) bool {
	for _, d := range deps {
		if !valid(d) {
			return false
		}
	}
	return true
}

// Manifest records the dependency set of a preprocessor run: the main
// file and every include by content hash, plus every missed resolution
// probe as a negative (must-stay-absent) entry.
func Manifest(fs *vfs.FS, main string, res *preprocessor.Result) []Dep {
	deps := make([]Dep, 0, len(res.Includes)+len(res.AbsentDeps)+1)
	add := func(p string) {
		if h, ok := fs.ContentHash(p); ok {
			deps = append(deps, Dep{Path: p, Hash: h})
		}
	}
	add(vfs.Clean(main))
	for _, inc := range res.Includes {
		add(inc)
	}
	for _, p := range res.AbsentDeps {
		deps = append(deps, Dep{Path: p})
	}
	return deps
}

// Validator returns a Dep validator over fs: positive deps must hash to
// the recorded value, negative deps must still be absent.
func Validator(fs *vfs.FS) func(Dep) bool {
	return func(d Dep) bool {
		if d.Hash == "" {
			return !fs.Exists(d.Path)
		}
		h, ok := fs.ContentHash(d.Path)
		return ok && h == d.Hash
	}
}
