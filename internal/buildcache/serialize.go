package buildcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cpp/ast"
	"repro/internal/cpp/parser"
	"repro/internal/cpp/preprocessor"
	"repro/internal/cpp/token"
)

// Wire serialization of cache entries for the remote (L2) tier.
//
// Interned identities — token.Symbol and token.FileID — are process
// local, so the wire format carries spellings and file names and the
// decoder re-interns them; two nodes that exchange a payload end up with
// semantically identical tokens even though their intern tables differ.
// ASTs are not serialized: the parser is deterministic over a token
// stream, so an adopted entry can always reconstruct the tree — but
// eagerly re-parsing on every fetch costs almost as much as the compile
// the fetch avoided, so decode leaves TU.AST nil and TU.Unit() re-parses
// lazily, only for the rare consumer that walks the tree. Aux travels
// instead: callers whose Aux type has a registered AuxCodec (compilesim
// registers its Stats) get their derived statistics back byte-for-byte,
// so the hot path of an adopted entry touches tokens only.
//
// Every payload ends with the SHA-256 of everything before it. Decode
// recomputes and compares, so a truncated or bit-flipped payload — a
// misbehaving cache node, a partial write — is rejected instead of
// silently poisoning the local tier. All sections with map iteration
// are key-sorted, so encoding is deterministic: equal entries produce
// byte-equal payloads on every node.

// Payload magics: 4 bytes of format identity + version. Bump the
// version byte on any incompatible change; decoders reject unknown
// magics, so mixed-version fleets fall back to local builds instead of
// mis-decoding each other's entries. TU version 2 added the Aux section.
var (
	magicTokens = [4]byte{'Y', 'T', 'K', '1'}
	magicTU     = [4]byte{'Y', 'T', 'U', '2'}
)

// ------------------------------------------------------------ aux codecs

// AuxCodec serializes one concrete TU.Aux type for the remote tier.
// Encode reports false when the value is not this codec's type (the
// encoder tries each registered codec in turn); Decode must accept
// exactly what Encode produced. Codec names are part of the wire
// contract: a node that receives an unregistered name adopts the entry
// with a nil Aux and re-derives, so mixed fleets degrade instead of
// failing.
type AuxCodec struct {
	Name   string
	Encode func(aux any) ([]byte, bool)
	Decode func(blob []byte) (any, error)
}

var (
	auxMu     sync.RWMutex
	auxCodecs []AuxCodec
)

// RegisterAux installs an Aux codec (typically from an init function of
// the package owning the Aux type). Registering a duplicate or
// incomplete codec is a programming error and panics.
func RegisterAux(c AuxCodec) {
	if c.Name == "" || c.Encode == nil || c.Decode == nil {
		panic("buildcache: RegisterAux requires a name, an encoder, and a decoder")
	}
	auxMu.Lock()
	defer auxMu.Unlock()
	for _, have := range auxCodecs {
		if have.Name == c.Name {
			panic("buildcache: duplicate aux codec " + c.Name)
		}
	}
	auxCodecs = append(auxCodecs, c)
}

// encodeAux appends the aux section: codec name reference plus blob. An
// empty name records "no aux" — either none was set or no codec claimed
// its type.
func (w *wireWriter) encodeAux(aux any) {
	auxMu.RLock()
	defer auxMu.RUnlock()
	if aux != nil {
		for _, c := range auxCodecs {
			if blob, ok := c.Encode(aux); ok {
				w.strRef(c.Name)
				w.uvarint(uint64(len(blob)))
				w.buf = append(w.buf, blob...)
				return
			}
		}
	}
	w.strRef("")
	w.uvarint(0)
}

// decodeAux reads the aux section. Unknown codec names yield a nil aux
// (the receiver re-derives); a registered codec that rejects its own
// blob is an error, because the integrity hash already passed and the
// payload is simply not what the codec version promises.
func (r *wireReader) decodeAux() (any, error) {
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(r.pos)+n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("buildcache: aux blob truncated")
	}
	blob := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	if name == "" {
		return nil, nil
	}
	auxMu.RLock()
	defer auxMu.RUnlock()
	for _, c := range auxCodecs {
		if c.Name == name {
			aux, err := c.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("buildcache: aux codec %s: %v", name, err)
			}
			return aux, nil
		}
	}
	return nil, nil
}

// hashLen is the integrity trailer length (SHA-256).
const hashLen = sha256.Size

// ---------------------------------------------------------------- writer

type wireWriter struct {
	buf []byte
	// strings interns every string of the payload into one table;
	// records reference table indices, which both shrinks payloads
	// (spellings repeat constantly in token streams) and makes decode
	// re-interning cheap (each distinct spelling interned once).
	strings map[string]uint64
	order   []string
}

func newWireWriter(magic [4]byte) *wireWriter {
	w := &wireWriter{strings: map[string]uint64{}}
	w.buf = append(w.buf, magic[:]...)
	return w
}

func (w *wireWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *wireWriter) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *wireWriter) str(s string) uint64 {
	if i, ok := w.strings[s]; ok {
		return i
	}
	i := uint64(len(w.order))
	w.strings[s] = i
	w.order = append(w.order, s)
	return i
}

func (w *wireWriter) strRef(s string) { w.uvarint(w.str(s)) }

func (w *wireWriter) pos(p token.Pos) {
	w.strRef(p.File.Name())
	w.varint(int64(p.Offset))
	w.varint(int64(p.Line))
	w.varint(int64(p.Col))
}

// Token flag bits.
const (
	tokFlagNewline  = 1 // Token.LeadingNewline
	tokFlagSameFile = 2 // Pos.File equals the previous token's; file ref omitted
)

// tokens writes the stream with position compression: consecutive
// tokens almost always share a file and sit bytes apart, so the file
// reference is elided behind a flag bit and offset/line travel as
// deltas — one-byte varints instead of the three-or-four-byte absolute
// offsets of a megabyte-scale TU. This halves the payload and, because
// varint decode cost scales with encoded bytes, is the difference that
// makes adopting a remote entry cheaper than recompiling it.
func (w *wireWriter) tokens(toks []token.Token) {
	w.uvarint(uint64(len(toks)))
	var prevFile token.FileID
	var prevOff, prevLine int32
	havePrev := false
	for _, t := range toks {
		var flags byte
		if t.LeadingNewline {
			flags |= tokFlagNewline
		}
		sameFile := havePrev && t.Pos.File == prevFile
		if sameFile {
			flags |= tokFlagSameFile
		}
		w.buf = append(w.buf, byte(t.Kind), flags)
		w.strRef(t.Text)
		if !sameFile {
			w.strRef(t.Pos.File.Name())
		}
		w.varint(int64(t.Pos.Offset - prevOff))
		w.varint(int64(t.Pos.Line - prevLine))
		w.varint(int64(t.Pos.Col))
		prevFile, prevOff, prevLine = t.Pos.File, t.Pos.Offset, t.Pos.Line
		havePrev = true
	}
}

// finish appends the string table and the integrity trailer. The table
// travels after the records that reference it; the decoder reads it
// first via the offset recorded here.
func (w *wireWriter) finish() []byte {
	tableAt := uint64(len(w.buf))
	w.uvarint(uint64(len(w.order)))
	for _, s := range w.order {
		w.uvarint(uint64(len(s)))
		w.buf = append(w.buf, s...)
	}
	// Fixed-width table offset so the decoder can find it from the end.
	var off [8]byte
	binary.BigEndian.PutUint64(off[:], tableAt)
	w.buf = append(w.buf, off[:]...)
	sum := sha256.Sum256(w.buf)
	return append(w.buf, sum[:]...)
}

// ---------------------------------------------------------------- reader

type wireReader struct {
	buf     []byte
	pos     int
	strings []string
	// fileIDs/syms memoize interning per string-table entry (0 = not
	// yet interned; only the empty string interns to 0, and it is
	// special-cased). A decoded token stream repeats the same few file
	// names and identifier spellings hundreds of thousands of times,
	// and the per-token lookup inside token.InternFile/token.Intern was
	// the hottest part of decode before this cache — hot enough to make
	// adopting a remote entry cost more than recompiling it.
	fileIDs []token.FileID
	syms    []token.Symbol
}

// openWire verifies the trailer hash and magic and pre-reads the string
// table; every malformed shape maps to a distinct error so corruption
// tests can tell them apart.
func openWire(payload []byte, magic [4]byte) (*wireReader, error) {
	if len(payload) < len(magic)+8+hashLen {
		return nil, fmt.Errorf("buildcache: payload truncated (%d bytes)", len(payload))
	}
	body, trailer := payload[:len(payload)-hashLen], payload[len(payload)-hashLen:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("buildcache: payload integrity hash mismatch")
	}
	if string(body[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("buildcache: payload magic %q, want %q", body[:4], magic[:])
	}
	tableAt := binary.BigEndian.Uint64(body[len(body)-8:])
	if tableAt > uint64(len(body)-8) {
		return nil, fmt.Errorf("buildcache: string table offset out of range")
	}
	r := &wireReader{buf: body[:len(body)-8], pos: int(tableAt)}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("buildcache: string table count %d exceeds payload", n)
	}
	r.strings = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if uint64(r.pos)+l > uint64(len(r.buf)) {
			return nil, fmt.Errorf("buildcache: string table truncated")
		}
		r.strings = append(r.strings, string(r.buf[r.pos:r.pos+int(l)]))
		r.pos += int(l)
	}
	r.pos = 4 // rewind to the records, past the magic
	return r, nil
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("buildcache: malformed uvarint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("buildcache: malformed varint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// strIdx reads a string-table reference and returns its index; callers
// resolve it through strings, fileIDAt, or symAt.
func (r *wireReader) strIdx() (int, error) {
	i, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if i >= uint64(len(r.strings)) {
		return 0, fmt.Errorf("buildcache: string index %d out of range", i)
	}
	return int(i), nil
}

func (r *wireReader) str() (string, error) {
	i, err := r.strIdx()
	if err != nil {
		return "", err
	}
	return r.strings[i], nil
}

// fileIDAt interns string-table entry i as a file name at most once.
func (r *wireReader) fileIDAt(i int) token.FileID {
	s := r.strings[i]
	if s == "" {
		return 0
	}
	if r.fileIDs == nil {
		r.fileIDs = make([]token.FileID, len(r.strings))
	}
	id := r.fileIDs[i]
	if id == 0 {
		id = token.InternFile(s)
		r.fileIDs[i] = id
	}
	return id
}

// symAt mirrors fileIDAt for identifier/keyword spellings.
func (r *wireReader) symAt(i int) token.Symbol {
	s := r.strings[i]
	if s == "" {
		return token.NoSym
	}
	if r.syms == nil {
		r.syms = make([]token.Symbol, len(r.strings))
	}
	sym := r.syms[i]
	if sym == 0 {
		sym = token.Intern(s)
		r.syms[i] = sym
	}
	return sym
}

func (r *wireReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("buildcache: payload truncated at %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *wireReader) posval() (token.Pos, error) {
	fi, err := r.strIdx()
	if err != nil {
		return token.Pos{}, err
	}
	off, err := r.varint()
	if err != nil {
		return token.Pos{}, err
	}
	line, err := r.varint()
	if err != nil {
		return token.Pos{}, err
	}
	col, err := r.varint()
	if err != nil {
		return token.Pos{}, err
	}
	return token.Pos{File: r.fileIDAt(fi), Offset: int32(off), Line: int32(line), Col: int32(col)}, nil
}

func (r *wireReader) tokens() ([]token.Token, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("buildcache: token count %d exceeds payload", n)
	}
	toks := make([]token.Token, 0, n)
	var prevFile token.FileID
	var prevOff, prevLine int64
	for i := uint64(0); i < n; i++ {
		kind, err := r.byte()
		if err != nil {
			return nil, err
		}
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		ti, err := r.strIdx()
		if err != nil {
			return nil, err
		}
		file := prevFile
		if flags&tokFlagSameFile == 0 {
			fi, err := r.strIdx()
			if err != nil {
				return nil, err
			}
			file = r.fileIDAt(fi)
		}
		dOff, err := r.varint()
		if err != nil {
			return nil, err
		}
		dLine, err := r.varint()
		if err != nil {
			return nil, err
		}
		col, err := r.varint()
		if err != nil {
			return nil, err
		}
		off, line := prevOff+dOff, prevLine+dLine
		t := token.Token{
			Text:           r.strings[ti],
			Pos:            token.Pos{File: file, Offset: int32(off), Line: int32(line), Col: int32(col)},
			Kind:           token.Kind(kind),
			LeadingNewline: flags&tokFlagNewline != 0,
		}
		if t.Kind == token.Identifier || t.Kind == token.Keyword {
			// Symbols are process-local; re-intern into this node's
			// table (memoized per table entry, see symAt).
			t.Sym = r.symAt(ti)
		}
		toks = append(toks, t)
		prevFile, prevOff, prevLine = file, off, line
	}
	return toks, nil
}

// ----------------------------------------------------------- token entry

// EncodeTokens serializes a lexed token stream for the remote tier.
func EncodeTokens(toks []token.Token) []byte {
	w := newWireWriter(magicTokens)
	w.tokens(toks)
	return w.finish()
}

// DecodeTokens validates and deserializes an EncodeTokens payload,
// re-interning spellings and file names into this process's tables.
func DecodeTokens(payload []byte) ([]token.Token, error) {
	r, err := openWire(payload, magicTokens)
	if err != nil {
		return nil, err
	}
	return r.tokens()
}

// -------------------------------------------------------------- TU entry

func (w *wireWriter) strSlice(ss []string) {
	w.uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.strRef(s)
	}
}

func (r *wireReader) strSlice() ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("buildcache: slice count %d exceeds payload", n)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// EncodeTU serializes a whole-TU cache entry — the full preprocessor
// result, its Aux statistics (when a codec is registered for their
// type), and its dependency manifest — for the remote tier. The AST is
// intentionally not encoded (see the package comment above); TU.Unit()
// re-parses lazily on the receiving node if anything needs the tree.
func EncodeTU(tu *TU, deps []Dep) ([]byte, error) {
	if tu == nil || tu.Result == nil {
		return nil, fmt.Errorf("buildcache: cannot encode TU without a preprocessor result")
	}
	res := tu.Result
	w := newWireWriter(magicTU)
	w.tokens(res.Tokens)
	w.strSlice(res.Includes)
	w.uvarint(uint64(res.LOC))

	ddKeys := make([]string, 0, len(res.DirectDeps))
	for k := range res.DirectDeps {
		ddKeys = append(ddKeys, k)
	}
	sort.Strings(ddKeys)
	w.uvarint(uint64(len(ddKeys)))
	for _, k := range ddKeys {
		w.strRef(k)
		w.strSlice(res.DirectDeps[k])
	}

	w.strSlice(res.MissingIncludes)
	w.strSlice(res.AbsentDeps)

	mdKeys := make([]string, 0, len(res.MacroDefs))
	for k := range res.MacroDefs {
		mdKeys = append(mdKeys, k)
	}
	sort.Strings(mdKeys)
	w.uvarint(uint64(len(mdKeys)))
	for _, k := range mdKeys {
		md := res.MacroDefs[k]
		w.strRef(k)
		w.strRef(md.Name)
		w.strRef(md.File)
		var fl byte
		if md.FunctionLike {
			fl = 1
		}
		w.buf = append(w.buf, fl)
		w.strRef(md.Body)
		w.pos(md.Pos)
	}

	w.uvarint(uint64(len(res.MacroUses)))
	for _, mu := range res.MacroUses {
		w.strRef(mu.Name)
		w.strRef(mu.DefFile)
		w.pos(mu.Pos)
	}

	w.uvarint(uint64(len(deps)))
	for _, d := range deps {
		w.strRef(d.Path)
		w.strRef(d.Hash)
	}
	w.encodeAux(tu.Aux)
	return w.finish(), nil
}

// DecodeTU validates and deserializes an EncodeTU payload. The decoded
// TU carries a nil AST — Unit() re-parses from the token stream on first
// use, which almost no consumer of an adopted entry ever needs — and
// whatever Aux the registered codecs restored. The returned manifest
// must be re-validated against the local filesystem before the entry is
// served — a remote hit is only a hit when every recorded dependency
// (including the negative probes) still matches.
func DecodeTU(payload []byte) (*TU, []Dep, error) {
	r, err := openWire(payload, magicTU)
	if err != nil {
		return nil, nil, err
	}
	res := &preprocessor.Result{}
	if res.Tokens, err = r.tokens(); err != nil {
		return nil, nil, err
	}
	if res.Includes, err = r.strSlice(); err != nil {
		return nil, nil, err
	}
	loc, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	res.LOC = int(loc)

	nDD, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nDD > 0 {
		if nDD > uint64(len(r.buf)) {
			return nil, nil, fmt.Errorf("buildcache: direct-dep count %d exceeds payload", nDD)
		}
		res.DirectDeps = make(map[string][]string, nDD)
		for i := uint64(0); i < nDD; i++ {
			k, err := r.str()
			if err != nil {
				return nil, nil, err
			}
			vs, err := r.strSlice()
			if err != nil {
				return nil, nil, err
			}
			res.DirectDeps[k] = vs
		}
	}

	if res.MissingIncludes, err = r.strSlice(); err != nil {
		return nil, nil, err
	}
	if res.AbsentDeps, err = r.strSlice(); err != nil {
		return nil, nil, err
	}

	nMD, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nMD > 0 {
		if nMD > uint64(len(r.buf)) {
			return nil, nil, fmt.Errorf("buildcache: macro-def count %d exceeds payload", nMD)
		}
		res.MacroDefs = make(map[string]preprocessor.MacroDef, nMD)
		for i := uint64(0); i < nMD; i++ {
			k, err := r.str()
			if err != nil {
				return nil, nil, err
			}
			var md preprocessor.MacroDef
			if md.Name, err = r.str(); err != nil {
				return nil, nil, err
			}
			if md.File, err = r.str(); err != nil {
				return nil, nil, err
			}
			fl, err := r.byte()
			if err != nil {
				return nil, nil, err
			}
			md.FunctionLike = fl&1 != 0
			if md.Body, err = r.str(); err != nil {
				return nil, nil, err
			}
			if md.Pos, err = r.posval(); err != nil {
				return nil, nil, err
			}
			res.MacroDefs[k] = md
		}
	}

	nMU, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nMU > 0 {
		if nMU > uint64(len(r.buf)) {
			return nil, nil, fmt.Errorf("buildcache: macro-use count %d exceeds payload", nMU)
		}
		res.MacroUses = make([]preprocessor.MacroUse, 0, nMU)
		for i := uint64(0); i < nMU; i++ {
			var mu preprocessor.MacroUse
			if mu.Name, err = r.str(); err != nil {
				return nil, nil, err
			}
			if mu.DefFile, err = r.str(); err != nil {
				return nil, nil, err
			}
			if mu.Pos, err = r.posval(); err != nil {
				return nil, nil, err
			}
			res.MacroUses = append(res.MacroUses, mu)
		}
	}

	nDeps, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nDeps > uint64(len(r.buf)) {
		return nil, nil, fmt.Errorf("buildcache: manifest count %d exceeds payload", nDeps)
	}
	deps := make([]Dep, 0, nDeps)
	for i := uint64(0); i < nDeps; i++ {
		var d Dep
		if d.Path, err = r.str(); err != nil {
			return nil, nil, err
		}
		if d.Hash, err = r.str(); err != nil {
			return nil, nil, err
		}
		deps = append(deps, d)
	}

	aux, err := r.decodeAux()
	if err != nil {
		return nil, nil, err
	}
	return &TU{Result: res, Aux: aux}, deps, nil
}

// Unit returns the parsed translation unit. Locally built entries return
// the AST the builder recorded; wire-decoded entries re-parse the token
// stream on first use (the parser is deterministic, so the result is
// semantically identical to the tree the building node held) and
// memoize it. Returns nil only for an empty TU or an unparseable
// stream, which a hash-validated payload cannot produce.
func (t *TU) Unit() *ast.TranslationUnit {
	if t.AST != nil {
		return t.AST
	}
	t.lazyOnce.Do(func() {
		if t.Result == nil {
			return
		}
		if tu, err := parser.New(t.Result.Tokens).Parse(); err == nil {
			t.lazyAST = tu
		}
	})
	return t.lazyAST
}
