package buildcache

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cpp/lexer"
	"repro/internal/cpp/token"
	"repro/internal/obs"
)

// fakeBackend is an in-memory Backend with real lease semantics: the
// first Lease on a missing key is granted, later ones block until the
// holder Puts or Unleases, then report LeaseReleased.
type fakeBackend struct {
	mu      sync.Mutex
	data    map[string][]byte
	leases  map[string]chan struct{}
	getErr  error
	putErr  error
	gets    atomic.Int64
	puts    atomic.Int64
	leased  atomic.Int64
	corrupt bool // serve garbage payloads
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{data: map[string][]byte{}, leases: map[string]chan struct{}{}}
}

func (b *fakeBackend) Get(ns, key string) ([]byte, bool, error) {
	b.gets.Add(1)
	if b.getErr != nil {
		return nil, false, b.getErr
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.data[ns+"/"+key]
	if ok && b.corrupt {
		return []byte("garbage"), true, nil
	}
	return p, ok, nil
}

func (b *fakeBackend) Put(ns, key string, payload []byte) error {
	b.puts.Add(1)
	if b.putErr != nil {
		return b.putErr
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data[ns+"/"+key] = payload
	if ch, ok := b.leases[ns+"/"+key]; ok {
		close(ch)
		delete(b.leases, ns+"/"+key)
	}
	return nil
}

func (b *fakeBackend) Lease(ns, key string) (LeaseState, error) {
	b.leased.Add(1)
	b.mu.Lock()
	if _, ok := b.data[ns+"/"+key]; ok {
		b.mu.Unlock()
		return LeaseReleased, nil
	}
	if ch, ok := b.leases[ns+"/"+key]; ok {
		b.mu.Unlock()
		select {
		case <-ch:
			return LeaseReleased, nil
		case <-time.After(10 * time.Second):
			return LeaseUnavailable, nil
		}
	}
	b.leases[ns+"/"+key] = make(chan struct{})
	b.mu.Unlock()
	return LeaseGranted, nil
}

func (b *fakeBackend) Unlease(ns, key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.leases[ns+"/"+key]; ok {
		close(ch)
		delete(b.leases, ns+"/"+key)
	}
	return nil
}

func TestRemoteTokensSharedAcrossCaches(t *testing.T) {
	be := newFakeBackend()
	a, b := New(), New()
	a.Remote, b.Remote = be, be

	const src = "int x = 40 + 2;\n"
	lex := func() ([]token.Token, error) { return lexer.Tokenize("a.cpp", src) }
	fresh, err := a.Tokens("a.cpp", src, lex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Tokens("a.cpp", src, func() ([]token.Token, error) {
		t.Fatal("node B lexed despite a remote hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, got) {
		t.Fatal("remote token hit differs from the fresh lex")
	}
	if st := a.Stats(); st.RemotePuts != 1 || st.RemoteMisses != 1 || st.RemoteTokenHits != 0 {
		t.Fatalf("node A stats = %+v, want 1 put / 1 remote miss", st)
	}
	if st := b.Stats(); st.RemoteTokenHits != 1 || st.TokenMisses != 1 {
		t.Fatalf("node B stats = %+v, want 1 remote token hit", st)
	}
}

func TestRemoteTUAdoptedAcrossCaches(t *testing.T) {
	be := newFakeBackend()
	a, b := New(), New()
	a.Remote, b.Remote = be, be
	tu, deps := realTU(t)
	always := func(Dep) bool { return true }
	key := ConfigKey("k")

	val, cached, err := a.TranslationUnit(key, always, func() (*TU, []Dep, error) {
		return tu, deps, nil
	})
	if err != nil || cached {
		t.Fatalf("node A: cached=%v err=%v, want a local build", cached, err)
	}
	got, cached, err := b.TranslationUnit(key, always, func() (*TU, []Dep, error) {
		t.Fatal("node B built despite a remote hit")
		return nil, nil, nil
	})
	if err != nil || !cached {
		t.Fatalf("node B: cached=%v err=%v, want a remote hit", cached, err)
	}
	if !reflect.DeepEqual(val.Result, got.Result) {
		t.Fatal("adopted TU differs from the built one")
	}
	if got.AST != nil {
		t.Fatal("adoption parsed eagerly; the AST must stay lazy")
	}
	if got.Unit() == nil {
		t.Fatal("adopted TU cannot reconstruct its AST")
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.TUMisses != 1 || sa.LeaseGrants != 1 || sa.RemotePuts != 1 {
		t.Fatalf("node A stats = %+v, want 1 miss / 1 lease grant / 1 put", sa)
	}
	if sb.TUMisses != 0 || sb.RemoteTUHits != 1 {
		t.Fatalf("node B stats = %+v, want 0 misses / 1 remote TU hit", sb)
	}
	// Exactly-once accounting: fleet-wide compiles = sum of TUMisses.
	if sa.TUMisses+sb.TUMisses != 1 {
		t.Fatalf("fleet compiled %d times, want exactly once", sa.TUMisses+sb.TUMisses)
	}

	// Node B's local tier now holds the adopted entry: a second request
	// is an L1 hit, no remote traffic.
	gets := be.gets.Load()
	if _, cached, _ := b.TranslationUnit(key, always, nil); !cached {
		t.Fatal("adopted entry did not populate L1")
	}
	if be.gets.Load() != gets {
		t.Fatal("L1 hit still consulted the remote tier")
	}
}

func TestRemoteLeaseExactlyOnceAcrossFleet(t *testing.T) {
	be := newFakeBackend()
	const nodes = 4
	const clientsPerNode = 8
	caches := make([]*Cache, nodes)
	for i := range caches {
		caches[i] = New()
		caches[i].Remote = be
	}
	tu, deps := realTU(t)
	always := func(Dep) bool { return true }
	key := ConfigKey("k")

	var builds atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, c := range caches {
		for j := 0; j < clientsPerNode; j++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				<-start
				_, _, err := c.TranslationUnit(key, always, func() (*TU, []Dep, error) {
					builds.Add(1)
					time.Sleep(10 * time.Millisecond) // widen the race window
					return tu, deps, nil
				})
				if err != nil {
					t.Error(err)
				}
			}(c)
		}
	}
	close(start)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("fleet-wide cold miss built %d times, want exactly 1", n)
	}
	var misses, remoteHits, grants uint64
	for _, c := range caches {
		st := c.Stats()
		misses += st.TUMisses
		remoteHits += st.RemoteTUHits
		grants += st.LeaseGrants
	}
	if misses != 1 || grants != 1 {
		t.Fatalf("fleet stats: %d misses / %d lease grants, want 1 / 1", misses, grants)
	}
	if remoteHits != nodes-1 {
		t.Fatalf("remote TU hits = %d, want %d (one adoption per losing node)", remoteHits, nodes-1)
	}
}

func TestRemoteErrorsDegradeToLocal(t *testing.T) {
	be := newFakeBackend()
	be.getErr = errors.New("remote down")
	be.putErr = errors.New("remote down")
	c := New()
	c.Remote = be
	tu, deps := realTU(t)
	always := func(Dep) bool { return true }

	toks, err := c.Tokens("a.cpp", "int x;", func() ([]token.Token, error) {
		return lexer.Tokenize("a.cpp", "int x;")
	})
	if err != nil || len(toks) == 0 {
		t.Fatalf("token path failed with remote down: %v", err)
	}
	val, cached, err := c.TranslationUnit(ConfigKey("k"), always, func() (*TU, []Dep, error) {
		return tu, deps, nil
	})
	if err != nil || cached || val == nil {
		t.Fatalf("TU path failed with remote down: cached=%v err=%v", cached, err)
	}
	if st := c.Stats(); st.RemoteErrors == 0 {
		t.Fatalf("stats = %+v, want remote errors counted", st)
	}
	// The dead backend also failed the lease; the entry must still be
	// served from L1 afterwards.
	if _, cached, _ := c.TranslationUnit(ConfigKey("k"), always, nil); !cached {
		t.Fatal("local tier lost the entry built under a dead remote")
	}
}

func TestRemoteCorruptPayloadFallsBackToBuild(t *testing.T) {
	be := newFakeBackend()
	a, b := New(), New()
	a.Remote, b.Remote = be, be
	tu, deps := realTU(t)
	always := func(Dep) bool { return true }
	key := ConfigKey("k")
	if _, _, err := a.TranslationUnit(key, always, func() (*TU, []Dep, error) {
		return tu, deps, nil
	}); err != nil {
		t.Fatal(err)
	}
	be.corrupt = true
	builds := 0
	val, cached, err := b.TranslationUnit(key, always, func() (*TU, []Dep, error) {
		builds++
		return tu, deps, nil
	})
	if err != nil || val == nil {
		t.Fatalf("corrupt remote payload broke the build: %v", err)
	}
	if cached || builds != 1 {
		t.Fatalf("cached=%v builds=%d, want a local rebuild on corruption", cached, builds)
	}
	if st := b.Stats(); st.RemoteErrors == 0 {
		t.Fatalf("stats = %+v, want the corrupt payload counted as a remote error", st)
	}
}

func TestRemoteStaleManifestIsMiss(t *testing.T) {
	be := newFakeBackend()
	a, b := New(), New()
	a.Remote, b.Remote = be, be
	tu, deps := realTU(t)
	key := ConfigKey("k")
	always := func(Dep) bool { return true }
	never := func(Dep) bool { return false }
	if _, _, err := a.TranslationUnit(key, always, func() (*TU, []Dep, error) {
		return tu, deps, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Node B's tree differs (validator rejects the manifest): the remote
	// entry must not be served; B builds and publishes its own variant.
	builds := 0
	if _, cached, err := b.TranslationUnit(key, never, func() (*TU, []Dep, error) {
		builds++
		return tu, nil, nil
	}); err != nil || cached || builds != 1 {
		t.Fatalf("cached=%v builds=%d err=%v, want a local build on manifest mismatch", cached, builds, err)
	}
	if st := b.Stats(); st.RemoteTUHits != 0 {
		t.Fatalf("stats = %+v, want no remote hit for a stale manifest", st)
	}
}

func TestMaxBytesEviction(t *testing.T) {
	c := New()
	reg := obs.NewRegistry()
	c.AttachMetrics(obs.New(nil, reg))
	always := func(Dep) bool { return true }
	tu, deps := realTU(t)
	one := tuSizeEstimate(tu, deps)
	c.MaxBytes = 3*one + one/2 // room for ~3 entries

	for i := 0; i < 8; i++ {
		if _, _, err := c.TranslationUnit(ConfigKey(fmt.Sprintf("k%d", i)), always, func() (*TU, []Dep, error) {
			return tu, deps, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Fatalf("stats = %+v, want byte-cap evictions", st)
	}
	if c.tuBytes > c.MaxBytes {
		t.Fatalf("resident estimate %d exceeds MaxBytes %d", c.tuBytes, c.MaxBytes)
	}
	if n := c.tuLRU.Len(); n == 0 || n > 3 {
		t.Fatalf("LRU holds %d entries, want 1..3 under the byte cap", n)
	}
	if got := reg.Counter("buildcache.evicted_bytes").Value(); got != st.EvictedBytes {
		t.Fatalf("registry evicted_bytes = %d, Stats().EvictedBytes = %d", got, st.EvictedBytes)
	}
	// Most-recent entries survive.
	if _, cached, _ := c.TranslationUnit(ConfigKey("k7"), always, nil); !cached {
		t.Fatal("newest entry was evicted")
	}
}

func TestMaxBytesKeepsOversizedSingleton(t *testing.T) {
	c := New()
	always := func(Dep) bool { return true }
	tu, deps := realTU(t)
	c.MaxBytes = 1 // every entry is oversized
	for i := 0; i < 3; i++ {
		if _, _, err := c.TranslationUnit(ConfigKey(fmt.Sprintf("k%d", i)), always, func() (*TU, []Dep, error) {
			return tu, deps, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The newest entry always stays cached: an oversized TU caches alone
	// instead of thrashing.
	if n := c.tuLRU.Len(); n != 1 {
		t.Fatalf("LRU holds %d entries, want exactly the newest", n)
	}
	if _, cached, _ := c.TranslationUnit(ConfigKey("k2"), always, nil); !cached {
		t.Fatal("newest oversized entry was evicted")
	}
}

func TestRemoteMetricsRegisteredOnlyWithBackend(t *testing.T) {
	plain := obs.NewRegistry()
	c := New()
	c.AttachMetrics(obs.New(nil, plain))
	for name := range plain.Snapshot().Counters {
		if strings.HasPrefix(name, "buildcache.remote") || strings.HasPrefix(name, "buildcache.lease") {
			t.Fatalf("remote instrument %q registered without a Backend", name)
		}
	}
	for name := range plain.Snapshot().Histograms {
		if strings.HasPrefix(name, "buildcache.tier") {
			t.Fatalf("tier histogram %q registered without a Backend", name)
		}
	}

	farm := obs.NewRegistry()
	r := New()
	r.Remote = newFakeBackend()
	r.AttachMetrics(obs.New(nil, farm))
	snap := farm.Snapshot()
	for _, want := range []string{
		"buildcache.remote.token_hits", "buildcache.remote.tu_hits",
		"buildcache.remote.misses", "buildcache.remote.puts",
		"buildcache.remote.errors", "buildcache.lease.grants", "buildcache.lease.waits",
	} {
		if _, ok := snap.Counters[want]; !ok {
			t.Fatalf("counter %q missing with a Backend attached", want)
		}
	}
	for _, want := range []string{"buildcache.tier.l1_ms", "buildcache.tier.l2_ms", "buildcache.tier.compile_ms"} {
		if _, ok := snap.Histograms[want]; !ok {
			t.Fatalf("histogram %q missing with a Backend attached", want)
		}
	}
}
