// Package obs is the repository's zero-dependency observability layer:
// hierarchical wall-clock spans exported as Chrome trace_event JSON
// (chrome://tracing / Perfetto), a registry of named metric instruments
// (counters, gauges, time/cost histograms), and an injectable clock so
// every output can be made deterministic in tests.
//
// The unit threaded through the pipeline is *Obs: a handle bundling a
// tracer lane, a parent span, and a metrics registry. The nil *Obs is
// the disabled mode — every method on it (and on the nil *Span and nil
// instruments it hands out) is a no-op that performs zero allocations,
// so hot paths like the preprocessor carry their hooks unconditionally.
//
// Spans are recorded lock-free: each lane is owned by one goroutine
// (worker pools derive one lane per worker via Lane), and completed
// spans append to the owning lane without synchronization. Export
// happens after the pool drains.
package obs

import (
	"context"
	"log/slog"
	"time"
)

// Obs is the observability handle threaded through the pipeline: where
// new spans attach (lane + parent), where metrics register, and which
// structured logger nested work inherits. The nil *Obs disables
// everything at zero cost.
type Obs struct {
	tracer *Tracer
	reg    *Registry
	lane   *Lane
	parent int64
	log    *slog.Logger
}

// New returns a root handle over the given tracer and/or registry.
// Either may be nil; if both are nil the handle itself is nil (fully
// disabled). With a tracer, the root records into a lane named "main".
func New(t *Tracer, r *Registry) *Obs {
	if t == nil && r == nil {
		return nil
	}
	o := &Obs{tracer: t, reg: r}
	if t != nil {
		o.lane = t.newLane(PidWall, "main")
	}
	return o
}

// Lane derives a handle recording into a fresh wall-clock lane (one per
// worker goroutine). Parentage resets: spans on the new lane are roots.
// Safe on a nil receiver; without a tracer it returns the handle itself.
func (o *Obs) Lane(name string) *Obs {
	if o == nil || o.tracer == nil {
		return o
	}
	return &Obs{tracer: o.tracer, reg: o.reg, lane: o.tracer.newLane(PidWall, name), log: o.log}
}

// WithLogger returns a handle carrying l: Logger() hands it back with
// span correlation, and child handles (via Span.Obs and Lane) inherit
// it. A nil l returns the handle unchanged; attaching a logger to the
// nil (disabled) handle yields a logging-only handle — spans and
// metrics on it stay no-ops.
func (o *Obs) WithLogger(l *slog.Logger) *Obs {
	if l == nil {
		return o
	}
	if o == nil {
		return &Obs{log: l}
	}
	cp := *o
	cp.log = l
	return &cp
}

// Logger returns the handle's structured logger, annotated with the
// current span ID ("span" attribute) when the handle sits under a
// recorded span — log lines correlate back to the trace. Safe on a nil
// receiver: disabled handles return the discard logger, so callers can
// log unconditionally.
func (o *Obs) Logger() *slog.Logger {
	if o == nil || o.log == nil {
		return Discard()
	}
	if o.parent != 0 {
		return o.log.With(slog.Int64("span", o.parent))
	}
	return o.log
}

// SealLane seals the handle's trace lane (see Lane.Seal): the caller
// promises no further spans will be recorded through this handle or its
// descendants, which makes the lane exportable via Tracer.ExportSealed
// while other lanes are still recording. Safe on a nil receiver.
func (o *Obs) SealLane() {
	if o == nil {
		return
	}
	o.lane.Seal()
}

// VirtualLane returns a fresh virtual-cost lane for explicit-timestamp
// Emit calls, or nil without a tracer. Safe on a nil receiver.
func (o *Obs) VirtualLane(name string) *Lane {
	if o == nil || o.tracer == nil {
		return nil
	}
	return o.tracer.newLane(PidVirtual, name)
}

// Metrics exposes the handle's registry (nil when disabled).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Counter resolves a named counter, the nil no-op instrument when
// disabled. Resolve once per run and Add on the hot path.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name)
}

// Gauge resolves a named gauge (nil no-op when disabled).
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Observe records one value into the named histogram. Safe on nil.
func (o *Obs) Observe(name string, v float64) {
	if o == nil {
		return
	}
	o.reg.Histogram(name).Observe(v)
}

// ObserveMs records a duration, in milliseconds, into the named
// histogram. Safe on nil.
func (o *Obs) ObserveMs(name string, d time.Duration) {
	if o == nil {
		return
	}
	o.reg.Histogram(name).ObserveDuration(d)
}

// ObserveMsEx records a duration into the named histogram with sp's
// span ID as the bucket exemplar, linking the metric back to the trace
// span that exhibited the latency. Safe on nil (either receiver).
func (o *Obs) ObserveMsEx(name string, d time.Duration, sp *Span) {
	if o == nil {
		return
	}
	o.reg.Histogram(name).ObserveEx(float64(d)/1e6, sp.ID())
}

// Span is one in-progress span. The nil *Span is a no-op. A span is
// recorded onto its lane when End is called; all methods must be called
// from the lane's owning goroutine.
type Span struct {
	o      *Obs // child handle, parented at this span
	lane   *Lane
	id     int64
	parent int64
	name   string
	start  time.Time
	attrs  []Attr
}

// Start opens a span named name under the handle's current parent. Safe
// on a nil receiver (returns the nil no-op span). Pass only constant
// names from hot paths; attach dynamic data via SetStr/SetInt, which are
// free when the span is nil.
func (o *Obs) Start(name string) *Span {
	if o == nil {
		return nil
	}
	sp := &Span{name: name, parent: o.parent}
	if o.tracer != nil && o.lane != nil {
		sp.lane = o.lane
		sp.id = o.tracer.ids.Add(1)
		sp.start = o.tracer.clock.Now()
	}
	childParent := sp.id
	if sp.id == 0 {
		// Metrics-only handle: no span identity; callees keep the
		// inherited parent so a later tracer sees a consistent chain.
		childParent = o.parent
	}
	sp.o = &Obs{tracer: o.tracer, reg: o.reg, lane: o.lane, parent: childParent, log: o.log}
	return sp
}

// Obs returns the handle for work nested under this span, so callees'
// spans become children. Safe on a nil receiver (returns nil).
func (sp *Span) Obs() *Obs {
	if sp == nil {
		return nil
	}
	return sp.o
}

// ID returns the span's trace-unique ID, or 0 when the span is nil or
// not recorded (no tracer). Metric exemplars and request logs use it to
// point back into the trace. Safe on a nil receiver.
func (sp *Span) ID() int64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// SetStr attaches a string attribute. Safe on a nil receiver.
func (sp *Span) SetStr(key, val string) {
	if sp == nil || sp.lane == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Str: val, IsStr: true})
}

// SetInt attaches an integer attribute. Safe on a nil receiver.
func (sp *Span) SetInt(key string, val int64) {
	if sp == nil || sp.lane == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Int: val})
}

// End closes the span and records it onto its lane. Safe on a nil
// receiver.
func (sp *Span) End() {
	if sp == nil || sp.lane == nil {
		return
	}
	t := sp.lane.t
	now := t.clock.Now()
	sp.lane.events = append(sp.lane.events, event{
		id:     sp.id,
		parent: sp.parent,
		name:   sp.name,
		ts:     sp.start.Sub(t.epoch),
		dur:    now.Sub(sp.start),
		attrs:  sp.attrs,
	})
}

type ctxKey struct{}

// IntoContext carries the handle in a context; the harness layer passes
// contexts, lower layers receive the extracted *Obs in their options.
func IntoContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext extracts the handle carried by IntoContext, or nil.
func FromContext(ctx context.Context) *Obs {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(ctxKey{}).(*Obs)
	return o
}
