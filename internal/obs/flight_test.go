package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderEviction checks the ring bound: sealing past the cap
// drops the oldest sealed lane (seal order, not creation order) and
// increments both the tracer's eviction count and the attached registry
// counter.
func TestFlightRecorderEviction(t *testing.T) {
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	tr.SetSealedRetention(2)
	reg := NewRegistry()
	tr.AttachMetrics(reg)
	o := New(tr, reg)

	// Create lanes in one order, seal them in another: eviction must
	// follow seal order.
	a := o.Lane("req a")
	b := o.Lane("req b")
	c := o.Lane("req c")
	for _, l := range []*Obs{a, b, c} {
		sp := l.Start("request")
		sp.End()
	}
	b.SealLane() // sealed first → evicted first
	a.SealLane()
	c.SealLane() // pushes past cap 2: b drops

	st := tr.FlightStats()
	if st.Sealed != 2 || st.Cap != 2 || st.Evicted != 1 {
		t.Errorf("flight stats = %+v, want sealed=2 cap=2 evicted=1", st)
	}
	if got := reg.Counter("obs.flight.evicted").Value(); got != 1 {
		t.Errorf("registry eviction counter = %d, want 1", got)
	}

	var buf strings.Builder
	if err := tr.ExportSealed(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `"req b"`) {
		t.Errorf("evicted lane still exported:\n%s", out)
	}
	for _, name := range []string{`"req a"`, `"req c"`} {
		if !strings.Contains(out, name) {
			t.Errorf("retained lane %s missing:\n%s", name, out)
		}
	}

	// Double-seal is a no-op: no double entry, no spurious eviction.
	c.SealLane()
	if st := tr.FlightStats(); st.Sealed != 2 || st.Evicted != 1 {
		t.Errorf("double seal changed stats: %+v", st)
	}
}

// TestExportSealedLast checks the ?last=N window of the flight recorder.
func TestExportSealedLast(t *testing.T) {
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	o := New(tr, nil)
	for i := 0; i < 5; i++ {
		l := o.Lane(fmt.Sprintf("req %d", i))
		sp := l.Start("request")
		sp.End()
		l.SealLane()
	}
	var buf strings.Builder
	if err := tr.ExportSealedLast(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for i := 0; i < 3; i++ {
		if strings.Contains(out, fmt.Sprintf(`"req %d"`, i)) {
			t.Errorf("lane req %d outside the last-2 window exported", i)
		}
	}
	for i := 3; i < 5; i++ {
		if !strings.Contains(out, fmt.Sprintf(`"req %d"`, i)) {
			t.Errorf("lane req %d inside the last-2 window missing", i)
		}
	}
}

// TestFlightRecorderConcurrent hammers Seal, ExportSealed, and the
// retention trim from concurrent goroutines; run under -race this is
// the flight recorder's data-race proof. Invariants: exports always
// succeed, and the retained count never exceeds the cap.
func TestFlightRecorderConcurrent(t *testing.T) {
	const workers, lanesPer, cap = 4, 100, 16
	tr := NewTracer(nil)
	tr.SetSealedRetention(cap)
	reg := NewRegistry()
	tr.AttachMetrics(reg)
	o := New(tr, reg)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < lanesPer; i++ {
				lane := o.Lane(fmt.Sprintf("w%d-%d", w, i))
				sp := lane.Start("request")
				sp.SetInt("i", int64(i))
				sp.End()
				lane.SealLane()
			}
		}(w)
	}
	exportDone := make(chan struct{})
	go func() {
		defer close(exportDone)
		for i := 0; i < 50; i++ {
			if err := tr.ExportSealed(io.Discard); err != nil {
				t.Errorf("ExportSealed: %v", err)
				return
			}
			_ = tr.FlightStats()
		}
	}()
	wg.Wait()
	<-exportDone

	st := tr.FlightStats()
	if st.Sealed != cap {
		t.Errorf("retained %d sealed lanes, want cap %d", st.Sealed, cap)
	}
	if want := uint64(workers*lanesPer - cap); st.Evicted != want {
		t.Errorf("evicted = %d, want %d", st.Evicted, want)
	}
	if got := reg.Counter("obs.flight.evicted").Value(); got != st.Evicted {
		t.Errorf("registry eviction counter = %d, want %d", got, st.Evicted)
	}
}
