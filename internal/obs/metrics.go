package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil *Counter is a
// valid no-op instrument: Add on it does nothing and allocates nothing,
// which is what makes disabled-mode instrumentation free on hot paths.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric. The nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value. Safe on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the shared exponential bucket upper bounds, sized for
// millisecond-scale virtual time and cost observations.
var histBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram records a distribution of float64 observations (typically
// virtual milliseconds or simulated cost). The nil *Histogram is a valid
// no-op instrument.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     float64
	min     float64
	max     float64
	buckets []uint64 // len(histBounds)+1; last is the overflow bucket
	// exemplars holds one span ID per bucket (the most recent observation
	// recorded with ObserveEx), linking the metric back to a trace lane.
	// Lazily allocated: plain Observe traffic pays nothing for it.
	exemplars []int64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	h.ObserveEx(v, 0)
}

// ObserveEx records one value together with an exemplar span ID (0 for
// none): the bucket the value lands in remembers the ID, so a metrics
// snapshot can point at a concrete trace span that exhibited that
// latency. Safe on a nil receiver.
func (h *Histogram) ObserveEx(v float64, exemplar int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(histBounds, v)
	h.buckets[i]++
	if exemplar != 0 {
		if h.exemplars == nil {
			h.exemplars = make([]int64, len(histBounds)+1)
		}
		h.exemplars[i] = exemplar
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in milliseconds. Safe on nil.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / 1e6)
}

// Quantile estimates the q-quantile (0 < q < 1) from the histogram's
// exponential buckets. Safe on a nil receiver (returns 0).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileFromBuckets(q, h.count, h.buckets, h.min, h.max)
}

// quantileFromBuckets estimates a quantile by locating the bucket that
// contains the target rank and interpolating linearly inside it, clamped
// to the observed [min, max]. It is a pure function of the bucket
// counts, so snapshot output stays deterministic given deterministic
// observations. Results are rounded to 3 decimals (the histograms hold
// milliseconds; finer than a microsecond is estimation noise).
func quantileFromBuckets(q float64, count uint64, buckets []uint64, min, max float64) float64 {
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum+1e-9 < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = histBounds[i-1]
		}
		if lo < min {
			lo = min
		}
		hi := max // the observed max caps the overflow (and last) bucket
		if i < len(histBounds) && histBounds[i] < hi {
			hi = histBounds[i]
		}
		if hi < lo {
			hi = lo
		}
		v := lo + (hi-lo)*(rank-prev)/float64(n)
		return math.Round(v*1000) / 1000
	}
	return math.Round(max*1000) / 1000
}

// Registry is a process- or run-scoped set of named instruments, safe for
// concurrent use. The nil *Registry hands out nil instruments, so a
// registry pointer can be threaded unconditionally through the pipeline.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter. Safe on a nil
// receiver, in which case it returns the nil no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Safe on nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Safe on nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{buckets: make([]uint64, len(histBounds)+1)}
		r.hists[name] = h
	}
	return h
}

// HistSnapshot is one histogram's state at snapshot time. P50/P95/P99
// are estimated from the exponential buckets (see Quantile), so the
// /metrics JSON, the dashboard, and the benchmark reports all read the
// same numbers. Buckets lists only the non-empty buckets; LE is the
// bucket's inclusive upper bound and +Inf is rendered as the JSON
// string "inf".
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// BucketSnap is one non-empty histogram bucket. Exemplar, when nonzero,
// is the span ID of the most recent observation that landed in this
// bucket (recorded via ObserveEx) — the link from a metric back to its
// trace.
type BucketSnap struct {
	LE       string `json:"le"`
	N        uint64 `json:"n"`
	Exemplar int64  `json:"exemplar,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// encoding/json sorts map keys, so marshaling a snapshot is
// deterministic given deterministic instrument values.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Safe on a nil receiver
// (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]int64{}, Histograms: map[string]HistSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		h.mu.Lock()
		hs := HistSnapshot{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			P50: quantileFromBuckets(0.50, h.count, h.buckets, h.min, h.max),
			P95: quantileFromBuckets(0.95, h.count, h.buckets, h.min, h.max),
			P99: quantileFromBuckets(0.99, h.count, h.buckets, h.min, h.max),
		}
		for i, n := range h.buckets {
			if n == 0 {
				continue
			}
			le := "inf"
			if i < len(histBounds) {
				le = trimFloat(histBounds[i])
			}
			b := BucketSnap{LE: le, N: n}
			if h.exemplars != nil {
				b.Exemplar = h.exemplars[i]
			}
			hs.Buckets = append(hs.Buckets, b)
		}
		h.mu.Unlock()
		s.Histograms[k] = hs
	}
	return s
}

// JSON renders the snapshot as indented, key-sorted JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// String renders the snapshot as sorted "name = value" lines for -v
// style diagnostics.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %d\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "%-40s n=%d sum=%s min=%s max=%s p50=%s p95=%s p99=%s\n",
			k, h.Count, trimFloat(h.Sum), trimFloat(h.Min), trimFloat(h.Max),
			trimFloat(h.P50), trimFloat(h.P95), trimFloat(h.P99))
	}
	return b.String()
}

// trimFloat formats a float compactly without trailing zeros.
func trimFloat(f float64) string {
	out := fmt.Sprintf("%.3f", f)
	out = strings.TrimRight(out, "0")
	return strings.TrimRight(out, ".")
}
