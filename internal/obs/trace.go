package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Trace process IDs: wall-clock lanes (one per worker goroutine) live in
// PidWall; virtual-cost lanes (one per subject×mode, phase bars laid out
// on the simulated timeline) live in PidVirtual. chrome://tracing and
// Perfetto render them as two separate processes.
const (
	PidWall    = 1
	PidVirtual = 2
)

// Tracer collects spans into per-goroutine lanes and exports them as
// Chrome trace_event JSON. Lane creation takes a lock; recording into a
// lane is lock-free because each lane is owned by exactly one goroutine.
// Export must only be called after all recording goroutines have
// finished (e.g. after the worker pool's WaitGroup).
type Tracer struct {
	clock Clock
	epoch time.Time
	ids   atomic.Int64

	mu       sync.Mutex
	lanes    []*Lane
	nextWall int
	nextVirt int

	// The flight recorder: sealed lanes in seal order, bounded by
	// flightCap (0 = unbounded). When a Seal pushes the ring past the
	// cap the oldest sealed lane is dropped and evicted incremented —
	// a long-lived daemon keeps the last N requests' traces for
	// post-hoc "what just happened" debugging without growing forever.
	sealedOrder []*Lane
	flightCap   int
	evicted     uint64
	evictions   *Counter // registry mirror, set by AttachMetrics
}

// NewTracer returns a tracer reading time from clock (RealClock for
// production, a VirtualClock for byte-stable tests). The first reading
// becomes the trace epoch: all wall timestamps are relative to it.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = RealClock()
	}
	return &Tracer{clock: clock, epoch: clock.Now()}
}

// Lane is one trace timeline (a "thread" in the Chrome trace model).
// All recording methods must be called from the lane's owning goroutine.
type Lane struct {
	t      *Tracer
	pid    int
	tid    int
	name   string
	events []event
	sealed bool
}

// event is one completed span, recorded at End (or Emit) time.
type event struct {
	id     int64
	parent int64
	name   string
	ts     time.Duration // offset from the trace epoch (wall) or zero (virtual)
	dur    time.Duration
	attrs  []Attr
}

// Attr is one span attribute: a string or integer value under a key.
// A typed pair (rather than any) keeps attribute setting allocation-free.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// newLane registers a lane under the given pid.
func (t *Tracer) newLane(pid int, name string) *Lane {
	t.mu.Lock()
	defer t.mu.Unlock()
	var tid int
	if pid == PidVirtual {
		tid = t.nextVirt
		t.nextVirt++
	} else {
		tid = t.nextWall
		t.nextWall++
	}
	l := &Lane{t: t, pid: pid, tid: tid, name: name}
	t.lanes = append(t.lanes, l)
	return l
}

// Emit records one explicit-timestamp span on the lane — used for
// virtual-cost lanes, whose timeline is simulated time rather than the
// tracer's clock. Safe on a nil receiver.
func (l *Lane) Emit(name string, ts, dur time.Duration) {
	if l == nil {
		return
	}
	l.events = append(l.events, event{id: l.t.ids.Add(1), name: name, ts: ts, dur: dur})
}

// Seal marks the lane complete: its owner promises not to record into
// it again, which makes it safe to export while other lanes are still
// recording. Call it from the owning goroutine after the last End/Emit.
// Sealing enters the lane into the flight-recorder ring and enforces its
// retention cap (see SetSealedRetention): at capacity, the oldest sealed
// lane is dropped and the eviction counter incremented. Sealing an
// already-sealed lane is a no-op. Safe on a nil receiver.
func (l *Lane) Seal() {
	if l == nil {
		return
	}
	t := l.t
	var evictions *Counter
	t.mu.Lock()
	if !l.sealed {
		l.sealed = true
		t.sealedOrder = append(t.sealedOrder, l)
		if t.flightCap > 0 && len(t.sealedOrder) > t.flightCap {
			victim := t.sealedOrder[0]
			t.sealedOrder = t.sealedOrder[1:]
			t.evicted++
			evictions = t.evictions
			for i, ln := range t.lanes {
				if ln == victim {
					t.lanes = append(t.lanes[:i], t.lanes[i+1:]...)
					break
				}
			}
		}
	}
	t.mu.Unlock()
	// Incremented outside the tracer lock; Counter.Add is atomic.
	evictions.Add(1)
}

// SetSealedRetention caps the flight recorder: how many sealed lanes the
// tracer retains. When a Seal pushes the ring past n, the oldest sealed
// lane is dropped (seal order, not creation order). Long-lived servers
// that open one lane per request use this to bound trace memory. n <= 0
// (the default) retains everything.
func (t *Tracer) SetSealedRetention(n int) {
	t.mu.Lock()
	t.flightCap = n
	t.mu.Unlock()
}

// AttachMetrics mirrors flight-recorder evictions into the registry's
// "obs.flight.evicted" counter so a /metrics snapshot shows how much
// trace history has been dropped. Safe with a nil registry.
func (t *Tracer) AttachMetrics(r *Registry) {
	t.mu.Lock()
	t.evictions = r.Counter("obs.flight.evicted")
	t.mu.Unlock()
}

// FlightStats is the flight recorder's state: how many sealed lanes are
// retained, the retention cap (0 = unbounded), and how many sealed lanes
// have been evicted since the tracer was created.
type FlightStats struct {
	Sealed  int    `json:"sealed"`
	Cap     int    `json:"cap"`
	Evicted uint64 `json:"evicted"`
}

// FlightStats snapshots the flight recorder's state.
func (t *Tracer) FlightStats() FlightStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return FlightStats{Sealed: len(t.sealedOrder), Cap: t.flightCap, Evicted: t.evicted}
}

// Export writes the trace as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto. Lanes are emitted as thread-name
// metadata sorted by (pid, tid); span events are sorted by span ID,
// which equals start order for a single-lane trace and is a stable total
// order for a parallel one.
//
// Export must only be called after all recording goroutines have
// finished. A live server that still has lanes recording should use
// ExportSealed instead.
func (t *Tracer) Export(w io.Writer) error {
	t.mu.Lock()
	lanes := append([]*Lane(nil), t.lanes...)
	t.mu.Unlock()
	return t.exportLanes(w, lanes)
}

// ExportSealed writes the flight recorder — all retained sealed lanes —
// as Chrome trace_event JSON. Sealed lanes no longer record, so this is
// safe to call at any time — concurrently with goroutines still
// recording into unsealed lanes — which is what lets a long-lived
// daemon serve its trace over HTTP mid-run.
func (t *Tracer) ExportSealed(w io.Writer) error {
	return t.ExportSealedLast(w, 0)
}

// ExportSealedLast writes the most recent n sealed lanes (by seal
// order); n <= 0 exports the whole flight recorder.
func (t *Tracer) ExportSealedLast(w io.Writer, n int) error {
	t.mu.Lock()
	sealed := t.sealedOrder
	if n > 0 && len(sealed) > n {
		sealed = sealed[len(sealed)-n:]
	}
	lanes := append([]*Lane(nil), sealed...)
	t.mu.Unlock()
	return t.exportLanes(w, lanes)
}

func (t *Tracer) exportLanes(w io.Writer, lanes []*Lane) error {
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].pid != lanes[j].pid {
			return lanes[i].pid < lanes[j].pid
		}
		return lanes[i].tid < lanes[j].tid
	})

	var all []event
	byLane := map[int64]*Lane{}
	for _, l := range lanes {
		for _, ev := range l.events {
			byLane[ev.id] = l
			all = append(all, ev)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	bw := &errWriter{w: w}
	bw.puts(`{"traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.puts(",\n")
		} else {
			bw.puts("\n")
		}
		first = false
	}
	seenPid := map[int]bool{}
	for _, l := range lanes {
		if !seenPid[l.pid] {
			seenPid[l.pid] = true
			pname := "wall clock"
			if l.pid == PidVirtual {
				pname = "virtual phases"
			}
			comma()
			fmt.Fprintf(bw, `{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
				l.pid, jsonStr(pname))
		}
		comma()
		fmt.Fprintf(bw, `{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
			l.pid, l.tid, jsonStr(l.name))
	}
	for _, ev := range all {
		l := byLane[ev.id]
		comma()
		fmt.Fprintf(bw, `{"ph":"X","name":%s,"ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d`,
			jsonStr(ev.name), float64(ev.ts)/1e3, float64(ev.dur)/1e3, l.pid, l.tid)
		if ev.parent != 0 || len(ev.attrs) > 0 {
			bw.puts(`,"args":{`)
			argFirst := true
			arg := func(k string) {
				if !argFirst {
					bw.puts(",")
				}
				argFirst = false
				bw.puts(jsonStr(k) + ":")
			}
			if ev.parent != 0 {
				arg("parent")
				bw.puts(strconv.FormatInt(ev.parent, 10))
			}
			for _, a := range ev.attrs {
				arg(a.Key)
				if a.IsStr {
					bw.puts(jsonStr(a.Str))
				} else {
					bw.puts(strconv.FormatInt(a.Int, 10))
				}
			}
			bw.puts("}")
		}
		bw.puts("}")
	}
	bw.puts("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.err
}

// jsonStr quotes s as a JSON string (ASCII-safe; our names and attribute
// values are code-controlled identifiers and paths).
func jsonStr(s string) string { return strconv.Quote(s) }

// errWriter folds write errors so export code can stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	_, err := e.w.Write(p)
	e.err = err
	return len(p), nil
}

func (e *errWriter) puts(s string) { io.WriteString(e, s) }
