package obs

import (
	"testing"
	"time"
)

// TestDisabledModeZeroAllocs is the regression guard for the nil-handle
// contract: the exact hook sequence the preprocessor and compile
// simulator run per file/TU must not allocate when observability is off,
// so the default (untraced) pipeline pays nothing for its hooks.
func TestDisabledModeZeroAllocs(t *testing.T) {
	var o *Obs
	counter := o.Counter("preprocessor.files")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := o.Start("preprocess")
		sp.SetStr("main", "kernel.cpp")
		counter.Add(1)
		child := sp.Obs().Start("parse")
		child.SetInt("tokens", 4096)
		child.End()
		o.Observe("phase.preprocess_ms", 70.5)
		o.ObserveMs("compile.cost_ms", 678*time.Millisecond)
		sp.SetInt("includes", 12)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled-mode hook sequence allocates %v times per run, want 0", allocs)
	}
}

// TestMetricsOnlyHandleAllocs documents the metrics-only mode (registry,
// no tracer): instruments resolve once and the per-event cost is bounded
// to the span bookkeeping, which never touches a lane.
func TestMetricsOnlyNoTrace(t *testing.T) {
	o := New(nil, NewRegistry())
	sp := o.Start("compile")
	sp.SetStr("file", "x.cpp") // dropped: no lane
	sp.End()
	o.Counter("n").Add(1)
	if got := o.Counter("n").Value(); got != 1 {
		t.Errorf("counter = %d, want 1", got)
	}
	if o.Metrics() == nil {
		t.Error("Metrics() = nil for registry-backed handle")
	}
}
