package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeTrace mirrors the exported JSON shape for validation.
type chromeTrace struct {
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Name string         `json:"name"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestExportGoldenSequential drives a single-goroutine span tree under a
// virtual clock and pins the exported trace byte for byte: at -j 1 the
// span-ID order equals start order, so the output is fully deterministic.
func TestExportGoldenSequential(t *testing.T) {
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	o := New(tr, NewRegistry())

	root := o.Start("subject")
	root.SetStr("name", "02")
	mode := root.Obs().Start("mode")
	mode.SetStr("mode", "Default")
	compile := mode.Obs().Start("compile")
	compile.SetInt("tokens", 1234)
	compile.End()
	mode.End()
	root.End()

	w := o.Lane("worker 1")
	ws := w.Start("prepare")
	ws.End()

	vl := o.VirtualLane("02/Default")
	vl.Emit("Preprocess", 0, 70*time.Millisecond)
	vl.Emit("LexParse", 70*time.Millisecond, 298*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	checkGolden(t, "trace_j1.golden", buf.Bytes())
}

// TestExportParallel hammers one tracer from concurrent worker lanes and
// checks the structural invariants that survive nondeterministic
// interleaving: the export parses, every span lands on its worker's lane,
// and each lane's timeline is monotone (IDs sort by start order).
func TestExportParallel(t *testing.T) {
	const workers, spansPer = 4, 25
	tr := NewTracer(NewVirtualClock(time.Microsecond))
	o := New(tr, nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		lane := o.Lane("worker")
		go func() {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := lane.Start("unit")
				child := sp.Obs().Start("phase")
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	spans := 0
	lastTS := map[int]float64{}
	threadNames := 0
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threadNames++
			}
		case "X":
			spans++
			if ev.Pid != PidWall {
				t.Errorf("span %q on pid %d, want %d", ev.Name, ev.Pid, PidWall)
			}
			if ev.TS < lastTS[ev.Tid] {
				t.Errorf("tid %d not monotone: ts %v after %v", ev.Tid, ev.TS, lastTS[ev.Tid])
			}
			lastTS[ev.Tid] = ev.TS
		}
	}
	if want := workers * spansPer * 2; spans != want {
		t.Errorf("got %d spans, want %d", spans, want)
	}
	if want := workers + 1; threadNames != want { // +1 for the root "main" lane
		t.Errorf("got %d thread_name records, want %d", threadNames, want)
	}
}

// TestSpanParentage checks that child spans carry their parent's ID in
// args and that nil handles produce no events.
func TestSpanParentage(t *testing.T) {
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	o := New(tr, nil)
	parent := o.Start("parent")
	child := parent.Obs().Start("child")
	child.End()
	parent.End()

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	var childParent, got float64 = 1, -1
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && ev.Name == "child" {
			got = ev.Args["parent"].(float64)
		}
	}
	if got != childParent {
		t.Errorf("child's parent arg = %v, want %v", got, childParent)
	}

	// Nil-handle path: no tracer, no events, no panics.
	var nilObs *Obs
	sp := nilObs.Start("x")
	sp.SetStr("k", "v")
	sp.SetInt("n", 1)
	sp.Obs().Start("y").End()
	sp.End()
	nilObs.Lane("w").Start("z").End()
	nilObs.VirtualLane("v").Emit("e", 0, time.Second)
}

func TestExportSealedOnlyIncludesSealedLanes(t *testing.T) {
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	o := New(tr, nil)

	a := o.Lane("req 1")
	sp := a.Start("request")
	sp.SetStr("route", "cycle")
	sp.End()
	a.SealLane()

	b := o.Lane("req 2") // still recording: must not appear
	open := b.Start("request")

	var buf bytes.Buffer
	if err := tr.ExportSealed(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"req 1"`) {
		t.Fatalf("sealed lane missing from export:\n%s", out)
	}
	if strings.Contains(out, `"req 2"`) {
		t.Fatalf("unsealed lane leaked into export:\n%s", out)
	}
	open.End()
	b.SealLane()
	buf.Reset()
	if err := tr.ExportSealed(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"req 2"`) {
		t.Fatal("lane missing after seal")
	}
}

func TestExportSealedConcurrentWithRecording(t *testing.T) {
	tr := NewTracer(nil)
	o := New(tr, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lane := o.Lane(fmt.Sprintf("w%d-%d", w, i))
				sp := lane.Start("request")
				sp.SetInt("i", int64(i))
				sp.End()
				lane.SealLane()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if err := tr.ExportSealed(io.Discard); err != nil {
				t.Errorf("ExportSealed: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestSealedRetentionCapDropsOldest(t *testing.T) {
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	tr.SetSealedRetention(3)
	o := New(tr, nil)
	for i := 0; i < 10; i++ {
		lane := o.Lane(fmt.Sprintf("req %d", i))
		sp := lane.Start("request")
		sp.End()
		lane.SealLane()
	}
	var buf bytes.Buffer
	if err := tr.ExportSealed(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for i := 0; i < 7; i++ {
		if strings.Contains(out, fmt.Sprintf(`"req %d"`, i)) {
			t.Fatalf("dropped lane req %d still exported", i)
		}
	}
	for i := 7; i < 10; i++ {
		if !strings.Contains(out, fmt.Sprintf(`"req %d"`, i)) {
			t.Fatalf("retained lane req %d missing:\n%s", i, out)
		}
	}
}
