package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSnapshotGolden pins the snapshot encodings (JSON and the -v text
// form) for a deterministic registry.
func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("buildcache.tu.hits").Add(12)
	r.Counter("buildcache.tu.misses").Add(3)
	r.Gauge("workers").Set(4)
	h := r.Histogram("compile.cost_ms")
	h.Observe(0.05)
	h.Observe(42)
	h.Observe(678.4)
	h.ObserveDuration(1500 * time.Millisecond)

	snap := r.Snapshot()
	blob, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json.golden", append(blob, '\n'))
	checkGolden(t, "metrics.txt.golden", []byte(snap.String()))
}

// TestRegistryConcurrency hammers one registry from 8 goroutines —
// creating, incrementing, observing, and snapshotting concurrently — and
// checks the totals. Run under -race this is the registry's data-race
// proof.
func TestRegistryConcurrency(t *testing.T) {
	const goroutines, iters = 8, 2000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Add(1)
				r.Counter("per-goroutine").Add(uint64(g))
				r.Gauge("last").Set(int64(i))
				r.Histogram("h").Observe(float64(i % 100))
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got, want := snap.Counters["shared"], uint64(goroutines*iters); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	if got, want := snap.Histograms["h"].Count, uint64(goroutines*iters); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var bucketSum uint64
	for _, b := range snap.Histograms["h"].Buckets {
		bucketSum += b.N
	}
	if got, want := bucketSum, uint64(goroutines*iters); got != want {
		t.Errorf("bucket sum = %d, want %d", got, want)
	}
}

// TestNilInstruments checks the disabled-mode no-ops.
func TestNilInstruments(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(1)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestVirtualClock checks the deterministic tick sequence.
func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(time.Millisecond)
	t0 := c.Now()
	t1 := c.Now()
	if got := t1.Sub(t0); got != time.Millisecond {
		t.Errorf("tick = %v, want 1ms", got)
	}
	if !t0.Equal(time.Unix(0, 0).UTC()) {
		t.Errorf("epoch = %v, want unix 0", t0)
	}
}
