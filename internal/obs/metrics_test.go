package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSnapshotGolden pins the snapshot encodings (JSON and the -v text
// form) for a deterministic registry.
func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("buildcache.tu.hits").Add(12)
	r.Counter("buildcache.tu.misses").Add(3)
	r.Gauge("workers").Set(4)
	h := r.Histogram("compile.cost_ms")
	h.Observe(0.05)
	h.Observe(42)
	h.Observe(678.4)
	h.ObserveDuration(1500 * time.Millisecond)

	snap := r.Snapshot()
	blob, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json.golden", append(blob, '\n'))
	checkGolden(t, "metrics.txt.golden", []byte(snap.String()))
}

// TestRegistryConcurrency hammers one registry from 8 goroutines —
// creating, incrementing, observing, and snapshotting concurrently — and
// checks the totals. Run under -race this is the registry's data-race
// proof.
func TestRegistryConcurrency(t *testing.T) {
	const goroutines, iters = 8, 2000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Add(1)
				r.Counter("per-goroutine").Add(uint64(g))
				r.Gauge("last").Set(int64(i))
				r.Histogram("h").Observe(float64(i % 100))
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got, want := snap.Counters["shared"], uint64(goroutines*iters); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	if got, want := snap.Histograms["h"].Count, uint64(goroutines*iters); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var bucketSum uint64
	for _, b := range snap.Histograms["h"].Buckets {
		bucketSum += b.N
	}
	if got, want := bucketSum, uint64(goroutines*iters); got != want {
		t.Errorf("bucket sum = %d, want %d", got, want)
	}
}

// TestNilInstruments checks the disabled-mode no-ops.
func TestNilInstruments(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(1)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestQuantileEstimation checks the bucket-interpolated quantiles
// against known distributions.
func TestQuantileEstimation(t *testing.T) {
	r := NewRegistry()

	// 100 uniform observations in (0, 100]: quantiles should land within
	// one bucket width of the exact values.
	u := r.Histogram("uniform")
	for i := 1; i <= 100; i++ {
		u.Observe(float64(i))
	}
	if p50 := u.Quantile(0.50); p50 < 25 || p50 > 75 {
		t.Errorf("uniform p50 = %v, want ~50 (within bucket resolution)", p50)
	}
	if p99 := u.Quantile(0.99); p99 < 95 || p99 > 100 {
		t.Errorf("uniform p99 = %v, want ~99", p99)
	}

	// A single observation: every quantile is that value.
	s := r.Histogram("single")
	s.Observe(42)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("single-sample q%.0f = %v, want 42", q*100, got)
		}
	}

	// Values beyond the last bound land in the overflow bucket, whose
	// upper edge is the observed max — quantiles stay finite.
	ov := r.Histogram("overflow")
	ov.Observe(20000)
	ov.Observe(30000)
	if p99 := ov.Quantile(0.99); p99 < 20000 || p99 > 30000 {
		t.Errorf("overflow p99 = %v, want within [20000, 30000]", p99)
	}

	// Empty and nil histograms report 0.
	if got := r.Histogram("empty").Quantile(0.95); got != 0 {
		t.Errorf("empty histogram p95 = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.95); got != 0 {
		t.Errorf("nil histogram p95 = %v, want 0", got)
	}

	// Snapshot quantiles agree with direct estimation.
	snap := r.Snapshot()
	if got, want := snap.Histograms["uniform"].P95, u.Quantile(0.95); got != want {
		t.Errorf("snapshot p95 = %v, direct estimate %v", got, want)
	}
}

// TestHistogramExemplars checks that ObserveEx pins the most recent span
// ID per bucket and that it surfaces in snapshots.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.ObserveEx(3, 101)  // bucket (2.5, 5]
	h.ObserveEx(4, 102)  // same bucket: replaces 101
	h.ObserveEx(40, 103) // bucket (25, 50]
	h.Observe(41)        // no exemplar: must not clobber 103

	snap := r.Snapshot().Histograms["lat"]
	byLE := map[string]BucketSnap{}
	for _, b := range snap.Buckets {
		byLE[b.LE] = b
	}
	if got := byLE["5"].Exemplar; got != 102 {
		t.Errorf("bucket le=5 exemplar = %d, want 102 (most recent)", got)
	}
	if got := byLE["50"].Exemplar; got != 103 {
		t.Errorf("bucket le=50 exemplar = %d, want 103", got)
	}
	if got := byLE["50"].N; got != 2 {
		t.Errorf("bucket le=50 n = %d, want 2", got)
	}

	// The Obs-level helper: span ID travels as the exemplar.
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	o := New(tr, r)
	sp := o.Start("request")
	o.ObserveMsEx("req_ms", 30*time.Millisecond, sp)
	sp.End()
	rs := r.Snapshot().Histograms["req_ms"]
	if len(rs.Buckets) != 1 || rs.Buckets[0].Exemplar != sp.ID() {
		t.Errorf("ObserveMsEx exemplar = %+v, want span %d", rs.Buckets, sp.ID())
	}
	// Nil span: records the value with no exemplar, no panic.
	o.ObserveMsEx("req_ms", 31*time.Millisecond, nil)
}

// TestVirtualClock checks the deterministic tick sequence.
func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(time.Millisecond)
	t0 := c.Now()
	t1 := c.Now()
	if got := t1.Sub(t0); got != time.Millisecond {
		t.Errorf("tick = %v, want 1ms", got)
	}
	if !t0.Equal(time.Unix(0, 0).UTC()) {
		t.Errorf("epoch = %v, want unix 0", t0)
	}
}
