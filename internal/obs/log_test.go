package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// TestLoggerGolden pins the text log format under a virtual clock: every
// line is byte-stable given a deterministic call sequence.
func TestLoggerGolden(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelDebug, NewVirtualClock(time.Second))
	log.Info("request", "route", "cycle", "status", 200)
	log.Debug("prepare", "subject", "02", "mode", "Yalla")
	checkGolden(t, "log.txt.golden", buf.Bytes())
}

// TestLoggerLevel checks that lines below the handler level are dropped.
func TestLoggerLevel(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, NewVirtualClock(time.Second))
	log.Debug("hidden")
	log.Info("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked through info level:\n%s", out)
	}
	if !strings.Contains(out, "visible") {
		t.Errorf("info line missing:\n%s", out)
	}
}

// TestObsLoggerSpanCorrelation checks that a handle under a recorded
// span annotates log lines with the span ID, and that the logger is
// inherited by child handles and lanes.
func TestObsLoggerSpanCorrelation(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, NewVirtualClock(time.Second))
	tr := NewTracer(NewVirtualClock(time.Millisecond))
	o := New(tr, nil).WithLogger(log)

	o.Logger().Info("root") // no span yet: no span attr
	sp := o.Start("request")
	sp.Obs().Logger().Info("inside")
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if strings.Contains(lines[0], "span=") {
		t.Errorf("root line carries a span attr: %s", lines[0])
	}
	if !strings.Contains(lines[1], "span=1") {
		t.Errorf("nested line missing span=1: %s", lines[1])
	}

	// Lane inherits the logger.
	if got := o.Lane("worker").Logger(); got == Discard() {
		t.Error("lane handle lost the logger")
	}
}

// TestNilObsLogger checks the disabled path: a nil handle logs to the
// discard logger without panicking, and Discard's Enabled is false so
// attribute evaluation is skipped.
func TestNilObsLogger(t *testing.T) {
	var o *Obs
	o.Logger().Info("dropped", "k", "v")
	if o.Logger() != Discard() {
		t.Error("nil handle did not return the discard logger")
	}
	if Discard().Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
	// Logging-only handle: spans stay no-ops, logger works.
	lo := o.WithLogger(StderrLogger(false))
	if lo == nil {
		t.Fatal("WithLogger on nil handle returned nil")
	}
	sp := lo.Start("x")
	if sp.ID() != 0 {
		t.Errorf("logging-only handle recorded a span: id %d", sp.ID())
	}
	sp.End()
}

// TestNewRunID checks that run IDs are non-empty and distinct.
func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == "" || a == b {
		t.Errorf("run IDs not distinct: %q %q", a, b)
	}
}
