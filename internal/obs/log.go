package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"time"
)

// Structured logging: the repository logs through log/slog so every
// line carries machine-readable fields (run ID, request ID, subject,
// mode, phase, span ID) instead of ad-hoc fmt.Fprintf prose. Loggers
// ride the *Obs handle (WithLogger/Logger), which annotates lines with
// the current span ID so logs correlate with traces; the injectable
// Clock makes log output byte-stable in golden tests.

// discardHandler drops every record. Implemented locally (rather than
// relying on newer stdlib helpers) so the disabled path stays a plain
// value with no setup.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discardLogger = slog.New(discardHandler{})

// Discard returns the shared no-op logger: Enabled is always false, so
// disabled-mode log calls skip attribute evaluation.
func Discard() *slog.Logger { return discardLogger }

// NewLogger returns a text-format slog logger writing to w at the given
// level. A non-nil clock replaces each record's timestamp with the
// clock's reading — a VirtualClock makes log output byte-stable for
// golden tests; nil keeps real timestamps. Timestamps render as UTC
// RFC3339 with millisecond precision.
func NewLogger(w io.Writer, level slog.Leveler, clock Clock) *slog.Logger {
	opts := &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				t := a.Value.Time()
				if clock != nil {
					t = clock.Now()
				}
				a.Value = slog.StringValue(t.UTC().Format("2006-01-02T15:04:05.000Z"))
			}
			return a
		},
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// runIDs makes NewRunID unique within a process even when two IDs are
// minted in the same nanosecond.
var runIDs atomic.Uint32

// NewRunID mints a short hex run identifier. Every top-level run (an
// experiments invocation, a daemon process, a bench run) stamps its log
// lines with one so interleaved or archived logs can be pulled apart.
func NewRunID() string {
	return fmt.Sprintf("%08x", uint32(time.Now().UnixNano())^runIDs.Add(1)<<24)
}

// StderrLogger is the conventional CLI logger: text on stderr, Info
// level (Debug when verbose), real timestamps.
func StderrLogger(verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	return NewLogger(os.Stderr, level, nil)
}
