package obs

import (
	"sync/atomic"
	"time"
)

// Clock abstracts the tracer's time source so trace and metric output can
// be made deterministic: production uses RealClock, tests inject a
// VirtualClock whose readings are a pure function of the call sequence,
// making exported traces byte-stable.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// VirtualClock is a deterministic clock: every Now() call advances a
// shared counter by a fixed step from a fixed epoch (the Unix epoch, UTC).
// It is safe for concurrent use; under concurrency the interleaving of
// readings is scheduler-dependent, but any single-goroutine call sequence
// always observes the same times.
type VirtualClock struct {
	step time.Duration
	n    atomic.Int64
}

// NewVirtualClock returns a virtual clock advancing by step per reading.
func NewVirtualClock(step time.Duration) *VirtualClock {
	return &VirtualClock{step: step}
}

// Now returns the next virtual instant.
func (c *VirtualClock) Now() time.Time {
	return time.Unix(0, 0).UTC().Add(time.Duration(c.n.Add(1)-1) * c.step)
}
