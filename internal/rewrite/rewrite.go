// Package rewrite implements an offset-based source rewriter in the style
// of clang's Rewriter, which the paper's tool uses to apply the Table 1
// code transformations ("while also using Clang's refactoring capabilities
// to implement the required changes", §4.1). Edits are recorded against
// the original buffer and applied in one pass.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vfs"
)

// Edit is one pending change: replace [Start,End) with Text. Insertions
// have Start == End; deletions have empty Text.
type Edit struct {
	Start, End int
	Text       string
	// seq preserves insertion order among edits at the same offset.
	seq int
}

// Buffer holds one file's contents plus pending edits.
type Buffer struct {
	Name  string
	src   string
	edits []Edit
	nseq  int
}

// NewBuffer wraps src for rewriting.
func NewBuffer(name, src string) *Buffer {
	return &Buffer{Name: name, src: src}
}

// Source returns the original text.
func (b *Buffer) Source() string { return b.src }

// Replace schedules replacement of [start,end) with text.
func (b *Buffer) Replace(start, end int, text string) error {
	if start < 0 || end > len(b.src) || start > end {
		return fmt.Errorf("rewrite %s: bad range [%d,%d) in %d-byte buffer", b.Name, start, end, len(b.src))
	}
	b.edits = append(b.edits, Edit{Start: start, End: end, Text: text, seq: b.nseq})
	b.nseq++
	return nil
}

// Insert schedules insertion of text at offset.
func (b *Buffer) Insert(offset int, text string) error {
	return b.Replace(offset, offset, text)
}

// Remove schedules deletion of [start,end).
func (b *Buffer) Remove(start, end int) error {
	return b.Replace(start, end, "")
}

// ReplaceLine schedules replacement of the full (1-based) line.
func (b *Buffer) ReplaceLine(line int, text string) error {
	start, end, ok := b.lineRange(line)
	if !ok {
		return fmt.Errorf("rewrite %s: no line %d", b.Name, line)
	}
	return b.Replace(start, end, text)
}

// RemoveLine schedules deletion of the full line including its newline.
func (b *Buffer) RemoveLine(line int) error {
	start, end, ok := b.lineRange(line)
	if !ok {
		return fmt.Errorf("rewrite %s: no line %d", b.Name, line)
	}
	if end < len(b.src) && b.src[end] == '\n' {
		end++
	}
	return b.Replace(start, end, "")
}

func (b *Buffer) lineRange(line int) (start, end int, ok bool) {
	cur := 1
	start = 0
	for i := 0; i <= len(b.src); i++ {
		if i == len(b.src) || b.src[i] == '\n' {
			if cur == line {
				return start, i, true
			}
			cur++
			start = i + 1
		}
	}
	return 0, 0, false
}

// HasEdits reports whether any edits are pending.
func (b *Buffer) HasEdits() bool { return len(b.edits) > 0 }

// Apply produces the rewritten text. Overlapping non-identical ranges are
// an error; edits at the same insertion point apply in schedule order.
func (b *Buffer) Apply() (string, error) {
	edits := append([]Edit(nil), b.edits...)
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		// Pure insertions at an offset come before a replacement starting
		// there, in schedule order between themselves.
		ii := edits[i].Start == edits[i].End
		jj := edits[j].Start == edits[j].End
		if ii != jj {
			return ii
		}
		return edits[i].seq < edits[j].seq
	})
	for i := 1; i < len(edits); i++ {
		if edits[i].Start < edits[i-1].End {
			return "", fmt.Errorf("rewrite %s: overlapping edits at [%d,%d) and [%d,%d)",
				b.Name, edits[i-1].Start, edits[i-1].End, edits[i].Start, edits[i].End)
		}
	}
	var out strings.Builder
	pos := 0
	for _, e := range edits {
		out.WriteString(b.src[pos:e.Start])
		out.WriteString(e.Text)
		pos = e.End
	}
	out.WriteString(b.src[pos:])
	return out.String(), nil
}

// Set manages buffers for multiple files in one apply batch. File names
// are normalized with vfs.Clean, so aliased spellings of the same file
// ("./a.hpp" vs "a.hpp") share one buffer instead of silently racing.
type Set struct {
	buffers   map[string]*Buffer
	conflicts []string
}

// NewSet returns an empty buffer set.
func NewSet() *Set { return &Set{buffers: map[string]*Buffer{}} }

// Add registers a file's contents under its cleaned name. Re-adding the
// same file with identical source returns the existing buffer, so edits
// recorded against either spelling accumulate in one place. Re-adding
// with different source records a conflict that fails ApplyAll: the
// previous behavior (replace the buffer) dropped the first buffer's
// edits without a trace.
func (s *Set) Add(name, src string) *Buffer {
	name = vfs.Clean(name)
	if b, ok := s.buffers[name]; ok {
		if b.src != src {
			s.conflicts = append(s.conflicts,
				fmt.Sprintf("%s re-added with different source (%d bytes vs %d)", name, len(b.src), len(src)))
		}
		return b
	}
	b := NewBuffer(name, src)
	s.buffers[name] = b
	return b
}

// Get returns the buffer for name under any spelling, or nil.
func (s *Set) Get(name string) *Buffer { return s.buffers[vfs.Clean(name)] }

// Files returns the registered cleaned file names in sorted order.
func (s *Set) Files() []string {
	names := make([]string, 0, len(s.buffers))
	for name := range s.buffers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ApplyAll produces rewritten text for every buffer, keyed by cleaned
// name. The batch is atomic: a conflicting Add or an overlapping edit in
// any buffer fails the whole call with no partial output, and buffers
// validate in sorted name order so the reported error is deterministic.
func (s *Set) ApplyAll() (map[string]string, error) {
	if len(s.conflicts) > 0 {
		msgs := append([]string(nil), s.conflicts...)
		sort.Strings(msgs)
		return nil, fmt.Errorf("rewrite: conflicting buffers in one batch: %s", strings.Join(msgs, "; "))
	}
	out := map[string]string{}
	for _, name := range s.Files() {
		text, err := s.buffers[name].Apply()
		if err != nil {
			return nil, err
		}
		out[name] = text
	}
	return out, nil
}
