package rewrite

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReplace(t *testing.T) {
	b := NewBuffer("t.cpp", "Kokkos::View<int**> x;")
	if err := b.Replace(0, 19, "Kokkos::View<int**>*"); err != nil {
		t.Fatal(err)
	}
	got, err := b.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if got != "Kokkos::View<int**>* x;" {
		t.Fatalf("got %q", got)
	}
}

func TestInsertAndRemove(t *testing.T) {
	b := NewBuffer("t.cpp", "f(a, b);")
	if err := b.Insert(2, "m, "); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove(5, 6); err != nil { // remove 'b'... offsets in original
		t.Fatal(err)
	}
	got, err := b.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if got != "f(m, a, );" {
		t.Fatalf("got %q", got)
	}
}

func TestMultipleEditsOrdered(t *testing.T) {
	b := NewBuffer("t.cpp", "abcdef")
	_ = b.Replace(4, 5, "E")
	_ = b.Replace(1, 2, "B")
	got, _ := b.Apply()
	if got != "aBcdEf" {
		t.Fatalf("got %q", got)
	}
}

func TestInsertionsAtSamePointKeepOrder(t *testing.T) {
	b := NewBuffer("t.cpp", "x")
	_ = b.Insert(0, "1")
	_ = b.Insert(0, "2")
	_ = b.Insert(0, "3")
	got, _ := b.Apply()
	if got != "123x" {
		t.Fatalf("got %q", got)
	}
}

func TestOverlapErrors(t *testing.T) {
	b := NewBuffer("t.cpp", "abcdef")
	_ = b.Replace(0, 3, "X")
	_ = b.Replace(2, 4, "Y")
	if _, err := b.Apply(); err == nil {
		t.Fatal("want overlap error")
	}
}

func TestBadRange(t *testing.T) {
	b := NewBuffer("t.cpp", "abc")
	if err := b.Replace(2, 10, "X"); err == nil {
		t.Fatal("want range error")
	}
	if err := b.Replace(-1, 2, "X"); err == nil {
		t.Fatal("want range error")
	}
}

func TestReplaceLineAndRemoveLine(t *testing.T) {
	src := "#include <Kokkos_Core.hpp>\nint x;\nint y;\n"
	b := NewBuffer("t.cpp", src)
	if err := b.ReplaceLine(1, "#include <lightweight_header.hpp>"); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Apply()
	want := "#include <lightweight_header.hpp>\nint x;\nint y;\n"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}

	b2 := NewBuffer("t.cpp", src)
	if err := b2.RemoveLine(2); err != nil {
		t.Fatal(err)
	}
	got2, _ := b2.Apply()
	if got2 != "#include <Kokkos_Core.hpp>\nint y;\n" {
		t.Fatalf("got %q", got2)
	}
}

func TestReplaceLineMissing(t *testing.T) {
	b := NewBuffer("t.cpp", "one line")
	if err := b.ReplaceLine(5, "x"); err == nil {
		t.Fatal("want error for missing line")
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Add("a.cpp", "aaa")
	s.Add("b.cpp", "bbb")
	_ = s.Get("a.cpp").Replace(0, 1, "X")
	out, err := s.ApplyAll()
	if err != nil {
		t.Fatal(err)
	}
	if out["a.cpp"] != "Xaa" || out["b.cpp"] != "bbb" {
		t.Fatalf("out = %v", out)
	}
	if s.Get("missing") != nil {
		t.Fatal("Get(missing) should be nil")
	}
}

// Two headers edited in one pass: edits recorded under aliased
// spellings of the same file must land in one buffer, and the batch
// keeps both files' edits (the old Set.Add replaced the prior buffer,
// silently dropping its edits).
func TestSetTwoHeadersOnePass(t *testing.T) {
	s := NewSet()
	a := s.Add("lib/a.hpp", "class A;\n")
	b := s.Add("lib/b.hpp", "class B;\n")
	_ = a.Replace(6, 7, "AA")
	_ = b.Replace(6, 7, "BB")
	// Re-adding a.hpp under an aliased spelling with identical source
	// must return the same buffer, not a fresh one.
	a2 := s.Add("./lib/a.hpp", "class A;\n")
	if a2 != a {
		t.Fatal("aliased Add returned a different buffer")
	}
	_ = a2.Insert(0, "// generated\n")
	out, err := s.ApplyAll()
	if err != nil {
		t.Fatal(err)
	}
	if out["lib/a.hpp"] != "// generated\nclass AA;\n" {
		t.Fatalf("a.hpp = %q", out["lib/a.hpp"])
	}
	if out["lib/b.hpp"] != "class BB;\n" {
		t.Fatalf("b.hpp = %q", out["lib/b.hpp"])
	}
}

func TestSetConflictingAddRejected(t *testing.T) {
	s := NewSet()
	a := s.Add("h.hpp", "one\n")
	_ = a.Replace(0, 3, "ONE")
	// Same file re-added with different source: the batch must fail
	// rather than apply edits against ambiguous contents.
	s.Add("./h.hpp", "two\n")
	if _, err := s.ApplyAll(); err == nil {
		t.Fatal("want conflict error from ApplyAll")
	} else if !strings.Contains(err.Error(), "h.hpp") {
		t.Fatalf("error does not name the file: %v", err)
	}
}

func TestSetAtomicOnOverlap(t *testing.T) {
	s := NewSet()
	good := s.Add("good.hpp", "int x;\n")
	bad := s.Add("bad.hpp", "int y;\n")
	_ = good.Replace(4, 5, "z")
	_ = bad.Replace(0, 4, "long")
	_ = bad.Replace(2, 5, "oops") // overlaps the first edit
	out, err := s.ApplyAll()
	if err == nil {
		t.Fatal("want overlap error")
	}
	if out != nil {
		t.Fatalf("partial output on error: %v", out)
	}
}

func TestSetFilesSorted(t *testing.T) {
	s := NewSet()
	s.Add("z.cpp", "")
	s.Add("a.cpp", "")
	s.Add("m/n.cpp", "")
	got := s.Files()
	want := []string{"a.cpp", "m/n.cpp", "z.cpp"}
	if len(got) != len(want) {
		t.Fatalf("Files() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Files() = %v, want %v", got, want)
		}
	}
}

func TestNoEditsIdentity(t *testing.T) {
	f := func(src string) bool {
		b := NewBuffer("t", src)
		got, err := b.Apply()
		return err == nil && got == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDisjointEditsApplyAll(t *testing.T) {
	// Splitting a string at even boundaries and replacing alternate
	// chunks must yield the expected composition.
	src := strings.Repeat("ab", 50)
	b := NewBuffer("t", src)
	for i := 0; i < len(src); i += 4 {
		_ = b.Replace(i, i+2, "XY")
	}
	got, err := b.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) || !strings.HasPrefix(got, "XYab") {
		t.Fatalf("got %q", got[:8])
	}
	if strings.Count(got, "XY") != 25 {
		t.Fatalf("XY count = %d", strings.Count(got, "XY"))
	}
}
