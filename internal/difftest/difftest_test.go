package difftest

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fuzzgen"
)

// TestCorpusOracles runs the differential harness over every corpus
// subject: the whole hand-written corpus must pass the exec and
// idempotence oracles with no violations and no skipped checks. The
// expensive path/perf matrix runs on one representative subject here
// (and on every generated program in TestFuzzSmoke); the full
// corpus x oracle product is the yallafuzz CLI's job.
func TestCorpusOracles(t *testing.T) {
	for _, s := range corpus.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			oracles := []string{"exec", "idempotent"}
			if s.Name == "02" {
				oracles = nil // the paper's main subject gets all four
			}
			r := Check(s, Options{Oracles: oracles})
			for _, v := range r.Violations {
				t.Errorf("%s: %s", s.Name, v)
			}
			for _, sk := range r.Skipped {
				t.Errorf("%s: skipped check: %s", s.Name, sk)
			}
		})
	}
}

// TestFuzzSmoke is the CI smoke run: a fixed, deterministic batch of
// generated programs through all four oracles. Any violation here is a
// real pipeline bug (or a generator bug), never flake.
func TestFuzzSmoke(t *testing.T) {
	const n = 20
	for seed := int64(1); seed <= n; seed++ {
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed})
		r := Check(SubjectFor(p), Options{})
		for _, v := range r.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestFaultInjection plants a one-line fault in the substituted output
// (an off-by-one in every emitted trace value) and requires the exec
// oracle to catch it, the minimizer to shrink the reproducer, and the
// repro round-trip (save / load / re-check) to keep failing while the
// fault is in place.
func TestFaultInjection(t *testing.T) {
	mutateGenerated = func(path, content string) string {
		if !strings.HasSuffix(path, ".cpp") {
			return content
		}
		return strings.Replace(content, "yf_emit(", "yf_emit(1 + ", 1)
	}
	defer func() { mutateGenerated = nil }()

	p := fuzzgen.Generate(fuzzgen.Config{Seed: 1})
	r := Check(SubjectFor(p), Options{Oracles: []string{"exec"}})
	if r.OK() {
		t.Fatal("planted fault not detected by exec oracle")
	}

	minimized, mres, err := Minimize(p, Options{Oracles: []string{"exec"}})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	lines := SourceLines(minimized)
	if lines > 25 {
		t.Errorf("minimized reproducer has %d source lines, want <= 25", lines)
	}
	if len(minimized.Files[fuzzgen.MainPath]) >= len(p.Files[fuzzgen.MainPath]) {
		t.Errorf("minimizer did not shrink main (%d -> %d bytes)",
			len(p.Files[fuzzgen.MainPath]), len(minimized.Files[fuzzgen.MainPath]))
	}

	rep := NewRepro(minimized, mres)
	dir := t.TempDir()
	path, err := rep.Save(dir)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatalf("LoadRepro: %v", err)
	}
	if loaded.Oracle != "exec" || loaded.SourceLines != lines {
		t.Errorf("round-trip changed repro: oracle=%q lines=%d", loaded.Oracle, loaded.SourceLines)
	}
	if rr := loaded.Check(Options{Oracles: []string{"exec"}}); rr.OK() {
		t.Error("reloaded reproducer no longer fails while the fault is still planted")
	}
}

// TestFaultInjectionClears verifies the harness itself is clean again
// once the fault hook is removed: the same seed passes.
func TestFaultInjectionClears(t *testing.T) {
	p := fuzzgen.Generate(fuzzgen.Config{Seed: 1})
	r := Check(SubjectFor(p), Options{Oracles: []string{"exec"}})
	if !r.OK() {
		t.Fatalf("seed 1 fails without fault: %v", r.Violations)
	}
}

// TestSavedRepros re-runs every reproducer saved under results/repros.
// Each records a historical pipeline bug; on a fixed HEAD they must all
// pass.
func TestSavedRepros(t *testing.T) {
	repros, err := LoadRepros("../../results/repros")
	if err != nil {
		t.Fatalf("LoadRepros: %v", err)
	}
	if len(repros) == 0 {
		t.Skip("no saved reproducers")
	}
	for _, rep := range repros {
		rep := rep
		t.Run(rep.Name, func(t *testing.T) {
			r := rep.Check(Options{})
			for _, v := range r.Violations {
				t.Errorf("%s (seed %d, originally %s): %s", rep.Name, rep.Seed, rep.Oracle, v)
			}
		})
	}
}

// TestOracleSelection checks Options.Oracles filtering.
func TestOracleSelection(t *testing.T) {
	p := fuzzgen.Generate(fuzzgen.Config{Seed: 2})
	r := Check(SubjectFor(p), Options{Oracles: []string{"idempotent"}})
	if !r.OK() {
		t.Fatalf("idempotent-only check failed: %v", r.Violations)
	}
}
