package difftest

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fuzzgen"
)

// TestCorpusOracles runs the differential harness over every corpus
// subject: the whole hand-written corpus must pass the exec,
// idempotence, and incremental (early-cutoff) oracles with no
// violations and no skipped checks. The expensive path/perf matrix runs
// on one representative subject here (and on every generated program in
// TestFuzzSmoke); the full corpus x oracle product is the yallafuzz
// CLI's job.
func TestCorpusOracles(t *testing.T) {
	for i, s := range corpus.All() {
		i, s := i, s
		t.Run(s.Name, func(t *testing.T) {
			oracles := []string{"safety", "exec", "idempotent", "incremental"}
			if s.Name == "02" {
				oracles = nil // the paper's main subject gets all seven
			}
			r := Check(s, Options{
				Oracles: oracles,
				// A different (still deterministic) edit stream per
				// subject, kept short: corpus subjects are big and every
				// stream step pays a cold one-shot build.
				IncrementalSeed:  int64(i + 1),
				IncrementalEdits: 5,
			})
			for _, v := range r.Violations {
				t.Errorf("%s: %s", s.Name, v)
			}
			for _, sk := range r.Skipped {
				t.Errorf("%s: skipped check: %s", s.Name, sk)
			}
		})
	}
}

// TestFuzzSmoke is the CI smoke run: a fixed, deterministic batch of
// generated programs through all five oracles (including safety: a
// check-pass error on any of these clean programs is a false positive).
// Any violation here is a real pipeline bug (or a generator bug), never
// flake.
func TestFuzzSmoke(t *testing.T) {
	const n = 20
	for seed := int64(1); seed <= n; seed++ {
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed})
		r := Check(SubjectFor(p), Options{})
		for _, v := range r.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestUnsafeGeneratedFlagged runs the safety oracle in MustFlag mode
// over a batch of unsafe-generated programs: every one must draw at
// least one check-pass error. The seed range is wide enough that both
// unsafe constructs (by-value field read, user subclass) occur.
func TestUnsafeGeneratedFlagged(t *testing.T) {
	kinds := map[string]bool{}
	for seed := int64(1); seed <= 12; seed++ {
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed, Unsafe: true})
		if !p.Unsafe {
			t.Fatalf("seed %d: Config.Unsafe not propagated to Program.Unsafe", seed)
		}
		for _, c := range p.Spec.Chunks {
			if strings.HasPrefix(c.Kind, "unsafe-") {
				kinds[c.Kind] = true
			}
		}
		r := Check(SubjectFor(p), Options{Oracles: []string{"safety"}, MustFlag: true})
		for _, v := range r.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
	for _, k := range []string{"unsafe-fieldread", "unsafe-subclass"} {
		if !kinds[k] {
			t.Errorf("seed range never generated construct %q", k)
		}
	}
}

// TestSafetyCleanSweep is a deterministic slice of the acceptance
// criterion's 500-program sweep: clean generated programs must draw
// zero check-pass errors (no false positives). The full sweep runs via
// `yallafuzz -n 500 -oracle safety`.
func TestSafetyCleanSweep(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= n; seed++ {
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed})
		r := Check(SubjectFor(p), Options{Oracles: []string{"safety"}})
		for _, v := range r.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestIncrementalSweep is a deterministic slice of the acceptance
// criterion's 500-program early-cutoff sweep: for every generated
// program, a live session driven through a seeded header-edit stream
// must stay byte-identical to the cold one-shot path after every edit,
// with benign edits scoring early cutoffs and macro edits invalidating.
// The full sweep runs via `yallafuzz -n 500 -oracle incremental`.
func TestIncrementalSweep(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= n; seed++ {
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed})
		r := Check(SubjectFor(p), Options{
			Oracles:         []string{"incremental"},
			IncrementalSeed: seed, // a different edit stream per program
		})
		for _, v := range r.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestSplitSweep is a deterministic slice of the acceptance criterion's
// 500-program god-header decomposition sweep: every generated program
// carries 2–4 weakly-coupled declaration clusters in its library header,
// and the split oracle must report zero divergences — decomposed
// programs execute identically to the originals and the rewrite is
// byte-identical across -j. The full sweep runs via
// `yallafuzz -n 500 -oracle split -god 3`.
func TestSplitSweep(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	decomposed := 0
	for seed := int64(1); seed <= n; seed++ {
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed, GodHeader: 2 + int(seed%3)})
		r := Check(SubjectFor(p), Options{Oracles: []string{"split"}})
		for _, v := range r.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		if len(r.Skipped) == 0 {
			decomposed++
		}
	}
	// The oracle may abstain on individual programs, but a sweep where
	// most god headers fail to decompose means the knob and the
	// analysis no longer meet.
	if decomposed < int(n)/2 {
		t.Errorf("only %d/%d god-header programs decomposed", decomposed, n)
	}
}

// TestFaultInjection plants a one-line fault in the substituted output
// (an off-by-one in every emitted trace value) and requires the exec
// oracle to catch it, the minimizer to shrink the reproducer, and the
// repro round-trip (save / load / re-check) to keep failing while the
// fault is in place.
func TestFaultInjection(t *testing.T) {
	mutateGenerated = func(path, content string) string {
		if !strings.HasSuffix(path, ".cpp") {
			return content
		}
		return strings.Replace(content, "yf_emit(", "yf_emit(1 + ", 1)
	}
	defer func() { mutateGenerated = nil }()

	p := fuzzgen.Generate(fuzzgen.Config{Seed: 1})
	r := Check(SubjectFor(p), Options{Oracles: []string{"exec"}})
	if r.OK() {
		t.Fatal("planted fault not detected by exec oracle")
	}

	minimized, mres, err := Minimize(p, Options{Oracles: []string{"exec"}})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	lines := SourceLines(minimized)
	if lines > 25 {
		t.Errorf("minimized reproducer has %d source lines, want <= 25", lines)
	}
	if len(minimized.Files[fuzzgen.MainPath]) >= len(p.Files[fuzzgen.MainPath]) {
		t.Errorf("minimizer did not shrink main (%d -> %d bytes)",
			len(p.Files[fuzzgen.MainPath]), len(minimized.Files[fuzzgen.MainPath]))
	}

	rep := NewRepro(minimized, mres)
	dir := t.TempDir()
	path, err := rep.Save(dir)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatalf("LoadRepro: %v", err)
	}
	if loaded.Oracle != "exec" || loaded.SourceLines != lines {
		t.Errorf("round-trip changed repro: oracle=%q lines=%d", loaded.Oracle, loaded.SourceLines)
	}
	if rr := loaded.Check(Options{Oracles: []string{"exec"}}); rr.OK() {
		t.Error("reloaded reproducer no longer fails while the fault is still planted")
	}
}

// TestCtorWrapperMutationScope re-plants PR-4's ctor-wrapper bug (the
// generated yalla_make_* wrapper constructs with a0 + 1 instead of a0)
// and pins down the safety oracle's scope boundary: the exec oracle
// catches the divergence, but no check pass can — the mutation lives in
// the *generated* wrappers TU, which does not exist when the input
// program is analyzed. The exec-unflagged cross-check is therefore
// suppressed while a fault hook is planted; EXPERIMENTS.md documents
// this class of bug as out of yallacheck's scope.
func TestCtorWrapperMutationScope(t *testing.T) {
	mutateGenerated = func(path, content string) string {
		if !strings.HasSuffix(path, "wrappers.cpp") {
			return content
		}
		return strings.Replace(content, "(a0);", "(a0 + 1);", 1)
	}
	defer func() { mutateGenerated = nil }()

	caught := false
	for seed := int64(1); seed <= 4; seed++ {
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed})
		r := Check(SubjectFor(p), Options{Oracles: []string{"safety", "exec"}})
		for _, v := range r.Violations {
			if v.Oracle == "exec" {
				caught = true
			}
			if v.Oracle == "safety" {
				t.Errorf("seed %d: safety oracle misfired on a generated-code fault: %s", seed, v)
			}
		}
	}
	if !caught {
		t.Error("planted ctor-wrapper mutation never tripped the exec oracle")
	}
}

// TestFaultInjectionClears verifies the harness itself is clean again
// once the fault hook is removed: the same seed passes.
func TestFaultInjectionClears(t *testing.T) {
	p := fuzzgen.Generate(fuzzgen.Config{Seed: 1})
	r := Check(SubjectFor(p), Options{Oracles: []string{"exec"}})
	if !r.OK() {
		t.Fatalf("seed 1 fails without fault: %v", r.Violations)
	}
}

// TestSavedRepros re-runs every reproducer saved under results/repros.
// Each records a historical pipeline bug; on a fixed HEAD they must all
// pass.
func TestSavedRepros(t *testing.T) {
	repros, err := LoadRepros("../../results/repros")
	if err != nil {
		t.Fatalf("LoadRepros: %v", err)
	}
	if len(repros) == 0 {
		t.Skip("no saved reproducers")
	}
	for _, rep := range repros {
		rep := rep
		t.Run(rep.Name, func(t *testing.T) {
			r := rep.Check(Options{})
			for _, v := range r.Violations {
				t.Errorf("%s (seed %d, originally %s): %s", rep.Name, rep.Seed, rep.Oracle, v)
			}
		})
	}
}

// TestOracleSelection checks Options.Oracles filtering.
func TestOracleSelection(t *testing.T) {
	p := fuzzgen.Generate(fuzzgen.Config{Seed: 2})
	r := Check(SubjectFor(p), Options{Oracles: []string{"idempotent"}})
	if !r.OK() {
		t.Fatalf("idempotent-only check failed: %v", r.Violations)
	}
}
