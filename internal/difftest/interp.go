// This file is the exec oracle's engine: a dynamically-typed tree-walking
// interpreter over the frontend's AST. It executes the ORIGINAL program
// (one translation unit) and the SUBSTITUTED program (modified source +
// lightweight header + wrappers TU, "linked" by merging declaration
// tables) and records a trace of yf_emit/std::cout events. External
// calls the corpus leaves bodiless (std::, declared-only library
// methods) are interpreted opaquely but deterministically: results are
// derived from a Merkle-style state hash of the receiver and arguments,
// so the extra object copies wrapper code introduces cannot skew the
// trace, while any reordering or dropped call still will.
package difftest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cpp/ast"
	"repro/internal/cpp/token"
)

// Trace is the observable behavior of one program run.
type Trace struct {
	// Events are the rendered yf_emit arguments and std::cout operands,
	// in order.
	Events []string
	// Ret is main's return value.
	Ret int64
}

// String renders the trace for diffs.
func (t *Trace) String() string {
	return fmt.Sprintf("events=[%s] ret=%d", strings.Join(t.Events, " | "), t.Ret)
}

// Run interprets a program formed by linking the given translation
// units: declarations are merged (definitions win over declarations)
// and execution starts at main(). budget bounds the number of
// interpreter steps (<= 0 means 2,000,000).
func Run(tus []*ast.TranslationUnit, budget int) (tr *Trace, err error) {
	if budget <= 0 {
		budget = 2_000_000
	}
	in := &interp{
		funcs:   map[string][]*funcInfo{},
		classes: map[string]*classInfo{},
		aliases: map[string]*ast.Type{},
		enums:   map[string]int64{},
		enumTys: map[string]bool{},
		globals: map[string]*cell{},
		steps:   budget,
	}
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(interpErr); ok {
				tr, err = nil, fmt.Errorf("interp: %s", string(ie))
				return
			}
			panic(r)
		}
	}()
	for _, tu := range tus {
		in.collect(tu.Decls, nil)
	}
	in.initGlobals()
	mains := in.funcs["main"]
	if len(mains) == 0 {
		// Corpus subjects follow the kernel convention: a zero-arg
		// `run_<name>()` entry instead of main().
		var names []string
		for name, list := range in.funcs {
			if strings.HasPrefix(name, "run") && len(list) == 1 &&
				len(list[0].decl.Params) == 0 && list[0].decl.Body != nil {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			mains = append(mains, in.funcs[name]...)
		}
	}
	if len(mains) == 0 {
		return nil, fmt.Errorf("interp: no main()")
	}
	mfn := mains[0]
	if mfn.decl.Body == nil {
		return nil, fmt.Errorf("interp: main() has no body")
	}
	args := make([]value, len(mfn.decl.Params))
	for i := range args {
		if i == 0 {
			args[i] = intV(1)
		} else {
			args[i] = strV("<argv>")
		}
	}
	ret := in.invoke(mfn, args, nil)
	t := &Trace{Events: in.events}
	if iv, ok := ret.(intV); ok {
		t.Ret = int64(iv)
	}
	return t, nil
}

// ----------------------------------------------------------------- model

type value interface{}

type (
	intV   int64
	floatV float64
	strV   string
	voidV  struct{}
	coutV  struct{}
)

// ptrV is a (possibly null) pointer to an object.
type ptrV struct{ obj *object }

// closureV is a lambda value; by-reference captures work because the
// closure holds the defining environment's cells.
type closureV struct {
	lam *ast.LambdaExpr
	env *env
	ns  []string
}

// funcRefV is a reference to a named free function.
type funcRefV struct{ name string }

// object is a class instance. Opaque objects (class never defined, or
// constructed through a bodiless constructor) carry only a state hash.
type object struct {
	class     *classInfo // nil when the class is unknown
	className string
	opaque    bool
	fields    map[string]*cell
	order     []string
	// state evolves on every opaque mutation; opaque reads derive from
	// it, which keeps them deterministic across extra wrapper copies.
	state uint64
}

type cell struct{ v value }

type funcInfo struct {
	decl *ast.FunctionDecl
	ns   []string
}

type classInfo struct {
	fqn     string
	ns      []string
	decl    *ast.ClassDecl
	hasDef  bool
	fields  []*ast.FieldDecl
	methods map[string][]*ast.FunctionDecl
}

type env struct {
	parent *env
	vars   map[string]*cell
}

func (e *env) lookup(name string) *cell {
	for s := e; s != nil; s = s.parent {
		if c, ok := s.vars[name]; ok {
			return c
		}
	}
	return nil
}

func (e *env) define(name string, v value) *cell {
	c := &cell{v: v}
	e.vars[name] = c
	return c
}

type interp struct {
	funcs       map[string][]*funcInfo
	classes     map[string]*classInfo
	aliases     map[string]*ast.Type
	enums       map[string]int64
	enumTys     map[string]bool
	globals     map[string]*cell
	globalOrder []*ast.VarDecl
	globalNS    [][]string

	events []string
	steps  int
}

type interpErr string

type retSignal struct{ v value }
type breakSignal struct{}
type continueSignal struct{}

func (in *interp) fail(format string, args ...any) {
	panic(interpErr(fmt.Sprintf(format, args...)))
}

func (in *interp) step() {
	in.steps--
	if in.steps <= 0 {
		in.fail("step budget exhausted")
	}
}

// ---------------------------------------------------------------- linker

func joinNS(ns []string, name string) string {
	if len(ns) == 0 {
		return name
	}
	return strings.Join(ns, "::") + "::" + name
}

// collect walks declarations, merging them into the global tables.
// Definitions win over forward/pure declarations so linking the
// lightweight header's decls with the wrappers TU's defs behaves like a
// real link step.
func (in *interp) collect(decls []ast.Decl, ns []string) {
	for _, d := range decls {
		switch x := d.(type) {
		case *ast.NamespaceDecl:
			if x.Name == "" {
				// extern "C" blocks parse as anonymous namespaces and
				// are transparent for name lookup.
				in.collect(x.Decls, ns)
				continue
			}
			in.collect(x.Decls, append(append([]string(nil), ns...), x.Name))
		case *ast.ClassDecl:
			in.collectClass(x, ns)
		case *ast.FunctionDecl:
			if !x.QualifierName.IsEmpty() {
				continue // out-of-line method definitions: not in the subset
			}
			in.addFunc(joinNS(ns, x.Name), x, ns)
		case *ast.AliasDecl:
			in.aliases[joinNS(ns, x.Name)] = x.Target
		case *ast.EnumDecl:
			in.collectEnum(x, ns)
		case *ast.VarDecl:
			in.globalOrder = append(in.globalOrder, x)
			in.globalNS = append(in.globalNS, ns)
		}
	}
}

func (in *interp) addFunc(fqn string, f *ast.FunctionDecl, ns []string) {
	list := in.funcs[fqn]
	for i, prev := range list {
		if len(prev.decl.Params) == len(f.Params) {
			// Same name and arity: a definition replaces a declaration.
			if f.Body != nil && prev.decl.Body == nil {
				list[i] = &funcInfo{decl: f, ns: ns}
			}
			return
		}
	}
	in.funcs[fqn] = append(list, &funcInfo{decl: f, ns: ns})
}

func (in *interp) collectClass(c *ast.ClassDecl, ns []string) {
	fqn := joinNS(ns, c.Name)
	ci := in.classes[fqn]
	if ci == nil {
		ci = &classInfo{fqn: fqn, ns: ns, methods: map[string][]*ast.FunctionDecl{}}
		in.classes[fqn] = ci
	}
	if !c.IsDefinition && ci.hasDef {
		return
	}
	if c.IsDefinition && !ci.hasDef {
		ci.decl, ci.hasDef, ci.ns = c, true, ns
		ci.fields = nil
		ci.methods = map[string][]*ast.FunctionDecl{}
		for _, m := range c.Members {
			switch mm := m.(type) {
			case *ast.FieldDecl:
				ci.fields = append(ci.fields, mm)
			case *ast.FunctionDecl:
				in.addMethod(ci, mm)
			case *ast.AliasDecl:
				in.aliases[fqn+"::"+mm.Name] = mm.Target
			case *ast.EnumDecl:
				in.collectEnum(mm, append(append([]string(nil), ns...), c.Name))
			}
		}
	}
}

func (in *interp) addMethod(ci *classInfo, f *ast.FunctionDecl) {
	list := ci.methods[f.Name]
	for i, prev := range list {
		if len(prev.Params) == len(f.Params) {
			if f.Body != nil && prev.Body == nil {
				list[i] = f
			}
			return
		}
	}
	ci.methods[f.Name] = append(list, f)
}

func (in *interp) collectEnum(e *ast.EnumDecl, ns []string) {
	in.enumTys[joinNS(ns, e.Name)] = true
	next := int64(0)
	for _, item := range e.Items {
		if item.Value != nil {
			next = in.toInt(in.eval(item.Value, &env{vars: map[string]*cell{}}, ns))
		}
		in.enums[joinNS(ns, item.Name)] = next
		in.enums[joinNS(ns, e.Name+"::"+item.Name)] = next
		next++
	}
}

func (in *interp) initGlobals() {
	for i, vd := range in.globalOrder {
		ns := in.globalNS[i]
		e := &env{vars: map[string]*cell{}}
		v := in.evalVarInit(vd, e, ns)
		in.globals[joinNS(ns, vd.Name)] = &cell{v: v}
	}
}

// resolve tries name against the enclosing namespaces, innermost first.
func resolveCandidates(name string, ns []string) []string {
	out := make([]string, 0, len(ns)+1)
	for i := len(ns); i > 0; i-- {
		out = append(out, strings.Join(ns[:i], "::")+"::"+name)
	}
	return append(out, name)
}

func (in *interp) findFuncs(name string, ns []string) ([]*funcInfo, string) {
	for _, cand := range resolveCandidates(name, ns) {
		if list, ok := in.funcs[cand]; ok {
			return list, cand
		}
	}
	return nil, ""
}

func (in *interp) findClass(name string, ns []string) *classInfo {
	for _, cand := range resolveCandidates(name, ns) {
		if ci, ok := in.classes[cand]; ok {
			return ci
		}
		if t, ok := in.aliases[cand]; ok {
			// Resolve the target in the namespace the alias was declared
			// in first (`using A = C;` inside fz refers to fz::C), then
			// fall back to the use site's namespaces.
			if i := strings.LastIndex(cand, "::"); i >= 0 {
				if ci := in.findClass(t.Name.Plain(), strings.Split(cand[:i], "::")); ci != nil {
					return ci
				}
			}
			return in.findClass(t.Name.Plain(), ns)
		}
	}
	return nil
}

// pickOverload selects a callable for the given argument count,
// tolerating trailing defaulted parameters.
func pickOverload(cands []*ast.FunctionDecl, nargs int) *ast.FunctionDecl {
	for _, f := range cands {
		if len(f.Params) == nargs {
			return f
		}
	}
	for _, f := range cands {
		if len(f.Params) > nargs {
			ok := true
			for _, p := range f.Params[nargs:] {
				if p.Default == nil {
					ok = false
				}
			}
			if ok {
				return f
			}
		}
	}
	return nil
}

// -------------------------------------------------------------- invoking

// invoke runs a function body. self, when non-nil, provides the field
// environment (method call).
func (in *interp) invoke(fn *funcInfo, args []value, argCells []*cell) value {
	return in.invokeDecl(fn.decl, fn.ns, args, argCells, nil)
}

func (in *interp) invokeDecl(f *ast.FunctionDecl, ns []string, args []value, argCells []*cell, self *object) (ret value) {
	in.step()
	e := &env{vars: map[string]*cell{}}
	if self != nil {
		for _, name := range self.order {
			e.vars[name] = self.fields[name]
		}
	}
	in.bindParams(f.Params, args, argCells, e, ns)
	defer func() {
		if r := recover(); r != nil {
			if rs, ok := r.(retSignal); ok {
				ret = rs.v
				return
			}
			panic(r)
		}
	}()
	in.execBlock(f.Body, e, ns)
	return voidV{}
}

func (in *interp) bindParams(params []ast.ParamDecl, args []value, argCells []*cell, e *env, ns []string) {
	for i, p := range params {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("$arg%d", i)
		}
		if i >= len(args) {
			if p.Default == nil {
				in.fail("missing argument %d and no default", i)
			}
			e.define(name, in.eval(p.Default, e, ns))
			continue
		}
		// Reference parameters bind the caller's cell (when the argument
		// is an lvalue), so callee writes are visible to the caller.
		if p.Type != nil && p.Type.LValueRef && i < len(argCells) && argCells[i] != nil {
			e.vars[name] = argCells[i]
			continue
		}
		v := args[i]
		if p.Type != nil && p.Type.IsByValue() {
			v = in.copyVal(v)
		}
		e.define(name, v)
	}
}

// copyVal implements C++ copy semantics at by-value binding points.
func (in *interp) copyVal(v value) value {
	o, ok := v.(*object)
	if !ok {
		return v
	}
	return in.cloneObject(o)
}

func (in *interp) cloneObject(o *object) *object {
	cp := &object{class: o.class, className: o.className, opaque: o.opaque, state: o.state,
		fields: map[string]*cell{}, order: append([]string(nil), o.order...)}
	for name, c := range o.fields {
		if cp.class != nil && cp.isRefField(name) {
			cp.fields[name] = c // reference members alias on copy
			continue
		}
		cp.fields[name] = &cell{v: in.copyVal(c.v)}
	}
	return cp
}

func (o *object) isRefField(name string) bool {
	if o.class == nil {
		return false
	}
	for _, f := range o.class.fields {
		if f.Name == name {
			return f.Type != nil && f.Type.LValueRef
		}
	}
	return false
}

// construct creates an instance of ci (or an opaque stand-in) from
// constructor arguments.
func (in *interp) construct(ci *classInfo, className string, args []value, argCells []*cell) *object {
	in.step()
	if ci == nil || !ci.hasDef {
		name := className
		if ci != nil {
			name = ci.fqn
		}
		return &object{className: name, opaque: true, fields: map[string]*cell{},
			state: hashAll(hashStr("ctor"), hashStr(name), in.hashArgs(args))}
	}
	// Implicit copy constructor (also when the source is an opaque
	// instance of the same class — wrapper code copy-constructs from
	// dereferenced pointers, `new C(*a0)`).
	if len(args) == 1 {
		if src, ok := args[0].(*object); ok && (src.class == ci || src.className == ci.fqn) {
			return in.cloneObject(src)
		}
	}
	ctors := ci.methods[ci.decl.Name]
	ctor := pickOverload(ctors, len(args))
	if ctor != nil && ctor.Body == nil {
		// Declared-only constructor: the class is externally implemented.
		return &object{class: ci, className: ci.fqn, opaque: true, fields: map[string]*cell{},
			state: hashAll(hashStr("ctor"), hashStr(ci.fqn), in.hashArgs(args))}
	}
	o := &object{class: ci, className: ci.fqn, fields: map[string]*cell{}}
	for _, f := range ci.fields {
		var v value = intV(0)
		if f.Init != nil {
			v = in.eval(f.Init, &env{vars: map[string]*cell{}}, ci.ns)
		}
		o.fields[f.Name] = &cell{v: v}
		o.order = append(o.order, f.Name)
	}
	if ctor == nil {
		if len(args) == 0 {
			return o
		}
		// Aggregate initialization (functor structs, plain structs).
		if len(ctors) == 0 && len(args) <= len(ci.fields) {
			for i := range args {
				f := ci.fields[i]
				if f.Type != nil && f.Type.LValueRef && i < len(argCells) && argCells[i] != nil {
					o.fields[f.Name] = argCells[i]
				} else {
					o.fields[f.Name].v = in.copyVal(args[i])
				}
			}
			return o
		}
		in.fail("no constructor of %s takes %d args", ci.fqn, len(args))
	}
	in.invokeDecl(ctor, ci.ns, args, argCells, o)
	return o
}

// --------------------------------------------------------------- opaques

const opaqueMask = 0x3fff_ffff

// opaqueResult derives a deterministic int from an opaque call.
func opaqueResult(h uint64) value { return intV(int64(h & opaqueMask)) }

// opaqueCall models a call whose definition is not available. decl may
// be nil (fully unknown). recv is the receiver's state hash (0 for free
// functions). Reference parameters receive derived values; non-const
// methods advance the receiver's state.
func (in *interp) opaqueCall(name string, recv *object, decl *ast.FunctionDecl, args []value, argCells []*cell) value {
	in.step()
	h := hashAll(hashStr("call"), hashStr(name), in.hashArgs(args))
	if recv != nil {
		h = hashAll(h, recv.state, in.hashObjShallow(recv))
	}
	if decl != nil {
		for i, p := range decl.Params {
			if p.Type == nil || !p.Type.LValueRef || p.Type.Const || i >= len(args) {
				continue
			}
			// An object passed by non-const reference is mutated in
			// place: fold the call into its state. Operating on the
			// value (not the cell) keeps both program variants in sync —
			// the wrapper path reaches the same shared object through a
			// pointer dereference that has no caller cell.
			if o, isObj := args[i].(*object); isObj {
				if !in.isCallable(o) {
					o.state = hashAll(o.state, hashStr("out"), h, uint64(i))
				}
				continue
			}
			if _, isCallable := args[i].(closureV); isCallable {
				continue
			}
			if i < len(argCells) && argCells[i] != nil {
				argCells[i].v = opaqueResult(hashAll(h, hashStr("out"), uint64(i)))
			}
		}
	}
	mutates := decl == nil || !decl.Const
	if recv != nil && mutates {
		recv.state = hashAll(recv.state, hashStr("mut"), h)
	}
	if decl != nil && decl.ReturnType != nil {
		rt := decl.ReturnType
		if rt.Builtin && rt.Name.Plain() == "void" {
			return voidV{}
		}
		// A declared class return type yields an opaque instance, so
		// `C x = lib_call(...);` (original) and `new C(lib_call(...))`
		// (wrapper) observe the same state on both sides.
		if !rt.Builtin && rt.Pointer == 0 {
			var rns []string
			if i := strings.LastIndex(name, "::"); i >= 0 {
				rns = strings.Split(name[:i], "::")
			}
			if recv != nil && recv.class != nil {
				rns = recv.class.ns
			}
			if ci := in.findClass(rt.Name.Plain(), rns); ci != nil {
				return &object{class: ci, className: ci.fqn, opaque: true,
					fields: map[string]*cell{}, state: hashAll(h, hashStr("ret"))}
			}
		}
	}
	return opaqueResult(h)
}

// opaqueStore models assignment through an opaque lvalue (e.g.
// `view(i, j) = x` on a declared-only class).
func (in *interp) opaqueStore(recv *object, key uint64, v value) {
	recv.state = hashAll(recv.state, hashStr("store"), key, in.hashVal(v))
}

func (in *interp) isCallable(o *object) bool {
	return o.class != nil && len(o.class.methods["operator()"]) > 0
}

// hashVal folds a value into a deterministic hash. Callables hash to a
// constant: the original program passes lambdas where the substituted
// one passes generated functors, and opaque callees invoke neither.
func (in *interp) hashVal(v value) uint64 {
	switch x := v.(type) {
	case intV:
		return hashAll(hashStr("i"), uint64(x))
	case floatV:
		return hashAll(hashStr("f"), uint64(int64(x*1e6)))
	case strV:
		return hashStr(string(x))
	case voidV:
		return hashStr("void")
	case coutV:
		return hashStr("cout")
	case closureV:
		return hashStr("callable")
	case funcRefV:
		return hashStr("callable")
	case ptrV:
		if x.obj == nil {
			return hashStr("null")
		}
		return in.hashVal(x.obj)
	case *object:
		if in.isCallable(x) {
			return hashStr("callable")
		}
		if x.opaque {
			return hashAll(hashStr("o"), x.state)
		}
		return hashAll(in.hashObjShallow(x), x.state)
	}
	return hashStr(fmt.Sprintf("%T", v))
}

func (in *interp) hashObjShallow(o *object) uint64 {
	h := hashStr(o.className)
	for _, name := range o.order {
		h = hashAll(h, in.hashVal(o.fields[name].v))
	}
	return h
}

func (in *interp) hashArgs(args []value) uint64 {
	h := hashStr("args")
	for _, a := range args {
		h = hashAll(h, in.hashVal(a))
	}
	return h
}

// FNV-1a-style mixing.
func hashStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func hashAll(parts ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// ------------------------------------------------------------ statements

func (in *interp) execBlock(b *ast.CompoundStmt, e *env, ns []string) {
	scope := &env{parent: e, vars: map[string]*cell{}}
	for _, s := range b.Stmts {
		in.exec(s, scope, ns)
	}
}

func (in *interp) exec(s ast.Stmt, e *env, ns []string) {
	in.step()
	switch x := s.(type) {
	case *ast.CompoundStmt:
		in.execBlock(x, e, ns)
	case *ast.DeclStmt:
		vd, ok := x.D.(*ast.VarDecl)
		if !ok {
			in.fail("unsupported local declaration %T", x.D)
		}
		e.define(vd.Name, in.evalVarInit(vd, e, ns))
	case *ast.ExprStmt:
		in.eval(x.X, e, ns)
	case *ast.ReturnStmt:
		var v value = voidV{}
		if x.X != nil {
			v = in.eval(x.X, e, ns)
		}
		panic(retSignal{v})
	case *ast.IfStmt:
		if in.truthy(in.eval(x.Cond, e, ns)) {
			in.exec(x.Then, e, ns)
		} else if x.Else != nil {
			in.exec(x.Else, e, ns)
		}
	case *ast.ForStmt:
		scope := &env{parent: e, vars: map[string]*cell{}}
		if x.Init != nil {
			in.exec(x.Init, scope, ns)
		}
		for x.Cond == nil || in.truthy(in.eval(x.Cond, scope, ns)) {
			if !in.loopBody(x.Body, scope, ns) {
				break
			}
			if x.Post != nil {
				in.eval(x.Post, scope, ns)
			}
		}
	case *ast.WhileStmt:
		for in.truthy(in.eval(x.Cond, e, ns)) {
			if !in.loopBody(x.Body, e, ns) {
				break
			}
		}
	case *ast.DoStmt:
		for {
			if !in.loopBody(x.Body, e, ns) {
				break
			}
			if !in.truthy(in.eval(x.Cond, e, ns)) {
				break
			}
		}
	case *ast.SwitchStmt:
		in.execSwitch(x, e, ns)
	default:
		in.fail("unsupported statement %T", s)
	}
}

// loopBody runs one iteration; false means break.
func (in *interp) loopBody(body ast.Stmt, e *env, ns []string) (cont bool) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case breakSignal:
				cont = false
			case continueSignal:
				cont = true
			default:
				panic(r)
			}
		}
	}()
	in.exec(body, e, ns)
	return true
}

func (in *interp) execSwitch(x *ast.SwitchStmt, e *env, ns []string) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(breakSignal); ok {
				return
			}
			panic(r)
		}
	}()
	cond := in.toInt(in.eval(x.Cond, e, ns))
	matched := false
	for _, c := range x.Cases {
		if !matched {
			if c.Value == nil {
				matched = true
			} else if in.toInt(in.eval(c.Value, e, ns)) == cond {
				matched = true
			}
		}
		if matched {
			scope := &env{parent: e, vars: map[string]*cell{}}
			for _, s := range c.Body {
				in.exec(s, scope, ns)
			}
		}
	}
}

func (in *interp) evalVarInit(vd *ast.VarDecl, e *env, ns []string) value {
	if vd.CtorArgs != nil || (vd.Init == nil && vd.Type != nil && !vd.Type.Builtin && vd.Type.Pointer == 0) {
		// T x(a, b); or T x; — construct (unless the type is an enum or
		// alias of a builtin, which default to zero).
		plain := vd.Type.Name.Plain()
		if in.isEnumType(plain, ns) {
			return intV(0)
		}
		ci := in.findClass(plain, ns)
		if ci == nil && vd.CtorArgs == nil {
			return intV(0)
		}
		args, cells := in.evalArgs(vd.CtorArgs, e, ns)
		return in.construct(ci, qualify(plain, ns), args, cells)
	}
	if vd.Init == nil {
		return intV(0)
	}
	v := in.eval(vd.Init, e, ns)
	// Copy-initialization from an existing lvalue object copies it.
	if _, isRef := vd.Init.(*ast.DeclRefExpr); isRef {
		if vd.Type != nil && vd.Type.IsByValue() {
			v = in.copyVal(v)
		}
	}
	if vd.Type != nil && vd.Type.Builtin && vd.Type.Pointer == 0 {
		v = in.coerceBuiltin(v, vd.Type)
	}
	return v
}

func qualify(name string, ns []string) string {
	if strings.Contains(name, "::") || len(ns) == 0 {
		return name
	}
	return name
}

func (in *interp) isEnumType(plain string, ns []string) bool {
	for _, cand := range resolveCandidates(plain, ns) {
		if in.enumTys[cand] {
			return true
		}
	}
	return false
}

func (in *interp) coerceBuiltin(v value, t *ast.Type) value {
	name := t.Name.Plain()
	switch name {
	case "int", "long", "short", "char", "unsigned", "size_t", "int64_t", "int32_t", "uint64_t", "uint32_t", "bool":
		if f, ok := v.(floatV); ok {
			return intV(int64(f))
		}
	case "double", "float":
		if i, ok := v.(intV); ok {
			return floatV(float64(i))
		}
	}
	return v
}

// ----------------------------------------------------------- expressions

// eval evaluates an expression to a value.
func (in *interp) eval(x ast.Expr, e *env, ns []string) value {
	v, _ := in.evalCell(x, e, ns)
	return v
}

// evalCell evaluates an expression and, when it denotes an lvalue,
// returns its storage cell too.
func (in *interp) evalCell(x ast.Expr, e *env, ns []string) (value, *cell) {
	in.step()
	switch ex := x.(type) {
	case *ast.LiteralExpr:
		return in.literal(ex), nil
	case *ast.DeclRefExpr:
		return in.declRef(ex, e, ns)
	case *ast.ParenExpr:
		return in.evalCell(ex.X, e, ns)
	case *ast.CallExpr:
		return in.evalCall(ex, e, ns), nil
	case *ast.MemberExpr:
		return in.member(ex, e, ns)
	case *ast.BinaryExpr:
		return in.binary(ex, e, ns), nil
	case *ast.UnaryExpr:
		return in.unary(ex, e, ns)
	case *ast.ConditionalExpr:
		if in.truthy(in.eval(ex.Cond, e, ns)) {
			return in.eval(ex.Then, e, ns), nil
		}
		return in.eval(ex.Else, e, ns), nil
	case *ast.LambdaExpr:
		in.checkLambda(ex)
		return closureV{lam: ex, env: e, ns: ns}, nil
	case *ast.NewExpr:
		ci := in.findClass(ex.Type.Name.Plain(), ns)
		args, cells := in.evalArgs(ex.Args, e, ns)
		return ptrV{obj: in.construct(ci, ex.Type.Name.Plain(), args, cells)}, nil
	case *ast.CastExpr:
		v := in.eval(ex.X, e, ns)
		if ex.Type != nil && ex.Type.Builtin {
			return in.coerceBuiltin(v, ex.Type), nil
		}
		return v, nil
	case *ast.InitListExpr:
		if !ex.TypeName.IsEmpty() {
			ci := in.findClass(ex.TypeName.Plain(), ns)
			args, cells := in.evalArgs(ex.Elems, e, ns)
			return in.construct(ci, ex.TypeName.Plain(), args, cells), nil
		}
		in.fail("untyped braced initializer")
	case *ast.IndexExpr:
		base := in.eval(ex.Base, e, ns)
		idx := in.eval(ex.Index, e, ns)
		if o, ok := base.(*object); ok && o.opaque {
			return in.opaqueCall("operator[]", o, nil, []value{idx}, nil), nil
		}
		in.fail("unsupported indexing on %T", base)
	}
	in.fail("unsupported expression %T", x)
	return nil, nil
}

func (in *interp) checkLambda(lam *ast.LambdaExpr) {
	if lam.DefaultCapture == "=" {
		in.fail("by-value default capture not supported")
	}
	for _, c := range lam.Captures {
		if c.Name != "" && !c.ByRef {
			in.fail("by-value capture %q not supported", c.Name)
		}
	}
}

func (in *interp) literal(l *ast.LiteralExpr) value {
	switch l.Kind {
	case token.IntLit:
		return intV(parseIntLit(l.Text))
	case token.FloatLit:
		f, _ := strconv.ParseFloat(strings.TrimRight(l.Text, "fFlL"), 64)
		return floatV(f)
	case token.CharLit:
		return intV(charLitValue(l.Text))
	case token.StringLit:
		return strV(unquoteCpp(l.Text))
	}
	switch l.Text {
	case "true":
		return intV(1)
	case "false":
		return intV(0)
	case "nullptr", "NULL":
		return ptrV{}
	}
	return intV(0)
}

func parseIntLit(s string) int64 {
	s = strings.TrimRight(s, "uUlL")
	s = strings.ReplaceAll(s, "'", "")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		u, _ := strconv.ParseUint(s, 0, 64)
		return int64(u)
	}
	return v
}

func charLitValue(s string) int64 {
	s = strings.TrimPrefix(strings.TrimPrefix(strings.TrimPrefix(s, "L"), "u"), "U")
	s = strings.Trim(s, "'")
	if strings.HasPrefix(s, "\\") && len(s) > 1 {
		switch s[1] {
		case 'n':
			return '\n'
		case 't':
			return '\t'
		case '0':
			return 0
		case '\\':
			return '\\'
		case '\'':
			return '\''
		}
	}
	if len(s) > 0 {
		return int64(s[0])
	}
	return 0
}

func unquoteCpp(s string) string {
	// Raw string: R"delim(content)delim"
	if i := strings.Index(s, "R\""); i >= 0 && i <= 2 {
		rest := s[i+2:]
		if j := strings.IndexByte(rest, '('); j >= 0 {
			delim := rest[:j]
			content := rest[j+1:]
			if k := strings.LastIndex(content, ")"+delim+"\""); k >= 0 {
				return content[:k]
			}
		}
	}
	s = strings.TrimLeft(s, "uUL8")
	s = strings.Trim(s, "\"")
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"', '\'':
				b.WriteByte(s[i])
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func (in *interp) declRef(ex *ast.DeclRefExpr, e *env, ns []string) (value, *cell) {
	plain := ex.Name.Plain()
	if len(ex.Name.Segments) == 1 {
		if c := e.lookup(plain); c != nil {
			return c.v, c
		}
		switch plain {
		case "true":
			return intV(1), nil
		case "false":
			return intV(0), nil
		case "nullptr", "NULL":
			return ptrV{}, nil
		}
	}
	// The trace sink wins over any `extern ostream cout;` stub global.
	switch plain {
	case "std::cout", "std::cerr", "cout", "cerr":
		return coutV{}, nil
	case "std::endl", "std::flush", "endl":
		return strV("\n"), nil
	}
	for _, cand := range resolveCandidates(plain, ns) {
		if v, ok := in.enums[cand]; ok {
			return intV(v), nil
		}
		if c, ok := in.globals[cand]; ok {
			return c.v, c
		}
	}
	if strings.HasPrefix(plain, "std::") {
		return opaqueResult(hashAll(hashStr("stdref"), hashStr(plain))), nil
	}
	if _, fqn := in.findFuncs(plain, ns); fqn != "" {
		return funcRefV{name: fqn}, nil
	}
	in.fail("unresolved name %q", plain)
	return nil, nil
}

func (in *interp) member(ex *ast.MemberExpr, e *env, ns []string) (value, *cell) {
	base := in.eval(ex.Base, e, ns)
	if p, ok := base.(ptrV); ok && ex.Arrow {
		if p.obj == nil {
			in.fail("member %q on null pointer", ex.Member)
		}
		base = p.obj
	}
	if o, ok := base.(*object); ok {
		if c, ok := o.fields[ex.Member]; ok {
			return c.v, c
		}
		if o.opaque {
			return in.opaqueCall(ex.Member, o, nil, nil, nil), nil
		}
	}
	in.fail("no member %q on %T", ex.Member, base)
	return nil, nil
}

func (in *interp) evalArgs(args []ast.Expr, e *env, ns []string) ([]value, []*cell) {
	vals := make([]value, len(args))
	cells := make([]*cell, len(args))
	for i, a := range args {
		vals[i], cells[i] = in.evalCell(a, e, ns)
	}
	return vals, cells
}

// evalCall dispatches a call expression.
func (in *interp) evalCall(ex *ast.CallExpr, e *env, ns []string) value {
	in.step()
	switch callee := ex.Callee.(type) {
	case *ast.MemberExpr:
		return in.methodCall(callee, ex.Args, e, ns)
	case *ast.DeclRefExpr:
		return in.namedCall(callee, ex.Args, e, ns)
	}
	fn := in.eval(ex.Callee, e, ns)
	args, cells := in.evalArgs(ex.Args, e, ns)
	return in.callValue(fn, args, cells, "<expr>")
}

func (in *interp) methodCall(callee *ast.MemberExpr, argExprs []ast.Expr, e *env, ns []string) value {
	base := in.eval(callee.Base, e, ns)
	if p, ok := base.(ptrV); ok && callee.Arrow {
		if p.obj == nil {
			in.fail("method %q on null pointer", callee.Member)
		}
		base = p.obj
	}
	args, cells := in.evalArgs(argExprs, e, ns)
	o, ok := base.(*object)
	if !ok {
		// Method call on a non-object (an opaque scalar, e.g. a
		// std::string stand-in): opaque, keyed on the receiver's hash.
		return opaqueResult(hashAll(hashStr("scalarmethod"), in.hashVal(base), hashStr(callee.Member), in.hashArgs(args)))
	}
	if o.class != nil {
		cands := o.class.methods[callee.Member]
		m := pickOverload(cands, len(args))
		if m != nil && m.Body != nil {
			return in.invokeDecl(m, o.class.ns, args, cells, o)
		}
		if m != nil {
			return in.opaqueCall(callee.Member, o, m, args, cells)
		}
		if o.class.hasDef && !o.opaque {
			in.fail("class %s has no method %q/%d", o.class.fqn, callee.Member, len(args))
		}
	}
	return in.opaqueCall(callee.Member, o, nil, args, cells)
}

func (in *interp) namedCall(callee *ast.DeclRefExpr, argExprs []ast.Expr, e *env, ns []string) value {
	plain := callee.Name.Plain()
	// Trace hook and receiver-normalization builtins.
	switch plain {
	case "yf_emit":
		args, _ := in.evalArgs(argExprs, e, ns)
		if len(args) != 1 {
			in.fail("yf_emit takes 1 argument")
		}
		in.events = append(in.events, in.render(args[0]))
		return voidV{}
	case "yalla_deref":
		args, _ := in.evalArgs(argExprs, e, ns)
		if len(args) != 1 {
			in.fail("yalla_deref takes 1 argument")
		}
		if p, ok := args[0].(ptrV); ok {
			if p.obj == nil {
				in.fail("yalla_deref(null)")
			}
			return p.obj
		}
		return args[0]
	}
	// A local or global variable holding a callable.
	if len(callee.Name.Segments) == 1 {
		if c := e.lookup(plain); c != nil {
			args, cells := in.evalArgs(argExprs, e, ns)
			return in.callValue(c.v, args, cells, plain)
		}
	}
	// Free function (possibly namespaced, possibly a template).
	if cands, fqn := in.findFuncs(plain, ns); cands != nil {
		var decls []*ast.FunctionDecl
		for _, fi := range cands {
			decls = append(decls, fi.decl)
		}
		args, cells := in.evalArgs(argExprs, e, ns)
		f := pickOverload(decls, len(args))
		if f == nil {
			in.fail("no overload of %s takes %d args", fqn, len(args))
		}
		for _, fi := range cands {
			if fi.decl == f {
				if f.Body == nil {
					return in.opaqueCall(fqn, nil, f, args, cells)
				}
				return in.invoke(fi, args, cells)
			}
		}
	}
	// Constructor call T(args) / alias / enum conversion.
	if ci := in.findClass(plain, ns); ci != nil {
		args, cells := in.evalArgs(argExprs, e, ns)
		return in.construct(ci, plain, args, cells)
	}
	if in.isEnumType(plain, ns) {
		args, _ := in.evalArgs(argExprs, e, ns)
		if len(args) == 1 {
			return args[0]
		}
	}
	// Static method: Qualifier::method().
	if q := callee.Name.Qualifier(); !q.IsEmpty() {
		if ci := in.findClass(q.Plain(), ns); ci != nil {
			name := callee.Name.Last().Name
			args, cells := in.evalArgs(argExprs, e, ns)
			m := pickOverload(ci.methods[name], len(args))
			if m != nil && m.Body != nil && m.Static {
				return in.invokeDecl(m, ci.ns, args, cells, nil)
			}
			return in.opaqueCall(ci.fqn+"::"+name, nil, m, args, cells)
		}
	}
	if strings.HasPrefix(plain, "std::") {
		args, cells := in.evalArgs(argExprs, e, ns)
		return in.opaqueCall(plain, nil, nil, args, cells)
	}
	in.fail("unresolved call to %q", plain)
	return nil
}

// callValue invokes a first-class callable: a lambda closure, a functor
// object, or a function reference.
func (in *interp) callValue(fn value, args []value, cells []*cell, what string) value {
	switch f := fn.(type) {
	case closureV:
		lamFn := &ast.FunctionDecl{Params: f.lam.Params, Body: f.lam.Body}
		return in.invokeClosure(lamFn, f, args, cells)
	case funcRefV:
		cands := in.funcs[f.name]
		var decls []*ast.FunctionDecl
		for _, fi := range cands {
			decls = append(decls, fi.decl)
		}
		d := pickOverload(decls, len(args))
		if d == nil {
			in.fail("no overload of %s takes %d args", f.name, len(args))
		}
		for _, fi := range cands {
			if fi.decl == d {
				if d.Body == nil {
					return in.opaqueCall(f.name, nil, d, args, cells)
				}
				return in.invoke(fi, args, cells)
			}
		}
	case *object:
		if in.isCallable(f) {
			m := pickOverload(f.class.methods["operator()"], len(args))
			if m != nil && m.Body != nil {
				return in.invokeDecl(m, f.class.ns, args, cells, f)
			}
		}
		if f.opaque {
			return in.opaqueCall("operator()", f, nil, args, cells)
		}
	case ptrV:
		if f.obj != nil {
			return in.callValue(f.obj, args, cells, what)
		}
	}
	in.fail("value %q (%T) is not callable", what, fn)
	return nil
}

// invokeClosure runs a lambda body in its captured environment.
func (in *interp) invokeClosure(f *ast.FunctionDecl, cl closureV, args []value, cells []*cell) (ret value) {
	in.step()
	e := &env{parent: cl.env, vars: map[string]*cell{}}
	in.bindParams(f.Params, args, cells, e, cl.ns)
	defer func() {
		if r := recover(); r != nil {
			if rs, ok := r.(retSignal); ok {
				ret = rs.v
				return
			}
			panic(r)
		}
	}()
	in.execBlock(f.Body, e, cl.ns)
	return voidV{}
}

// ---------------------------------------------------------- binary/unary

func (in *interp) binary(ex *ast.BinaryExpr, e *env, ns []string) value {
	switch ex.Op {
	case token.AmpAmp:
		if !in.truthy(in.eval(ex.L, e, ns)) {
			return intV(0)
		}
		return boolInt(in.truthy(in.eval(ex.R, e, ns)))
	case token.PipePipe:
		if in.truthy(in.eval(ex.L, e, ns)) {
			return intV(1)
		}
		return boolInt(in.truthy(in.eval(ex.R, e, ns)))
	case token.Assign, token.PlusEq, token.MinusEq, token.StarEq, token.SlashEq, token.PercentEq,
		token.AmpEq, token.PipeEq, token.CaretEq, token.ShlEq, token.ShrEq:
		return in.assign(ex, e, ns)
	}
	l := in.eval(ex.L, e, ns)
	if ex.Op == token.Shl || ex.Op == token.Shr {
		if _, isCout := l.(coutV); isCout && ex.Op == token.Shl {
			r := in.eval(ex.R, e, ns)
			in.events = append(in.events, in.render(r))
			return coutV{}
		}
		// Stream insertion/extraction on a library object
		// (std::stringstream and friends): run a defined operator<< if
		// the class has one, otherwise fold the operand into the
		// stream's state and return the stream so chains work. Not a
		// trace event — only std::cout observes.
		if o, isObj := l.(*object); isObj {
			r := in.eval(ex.R, e, ns)
			op := "operator<<"
			if ex.Op == token.Shr {
				op = "operator>>"
			}
			if o.class != nil {
				if m := pickOverload(o.class.methods[op], 1); m != nil && m.Body != nil {
					return in.invokeDecl(m, o.class.ns, []value{r}, nil, o)
				}
			}
			o.state = hashAll(o.state, hashStr("stream"), in.hashVal(r))
			return o
		}
	}
	r := in.eval(ex.R, e, ns)
	return in.arith(ex.Op, l, r)
}

func (in *interp) assign(ex *ast.BinaryExpr, e *env, ns []string) value {
	// Assignment through an opaque call result: view(i, j) = x.
	if call, ok := stripParens(ex.L).(*ast.CallExpr); ok {
		return in.opaqueAssign(ex, call, e, ns)
	}
	_, c := in.evalCell(ex.L, e, ns)
	if c == nil {
		in.fail("assignment target is not an lvalue")
	}
	r := in.eval(ex.R, e, ns)
	if ex.Op == token.Assign {
		c.v = in.copyVal(r)
		return c.v
	}
	c.v = in.arith(compoundBase(ex.Op), c.v, r)
	return c.v
}

// opaqueAssign handles `recv(args...) <op>= rhs` where recv(args...) is
// an opaque lvalue (a reference returned by a declared-only method).
func (in *interp) opaqueAssign(ex *ast.BinaryExpr, call *ast.CallExpr, e *env, ns []string) value {
	var recv *object
	var key uint64
	switch callee := call.Callee.(type) {
	case *ast.MemberExpr:
		base := in.eval(callee.Base, e, ns)
		if p, ok := base.(ptrV); ok {
			base = p.obj
		}
		o, ok := base.(*object)
		if !ok {
			in.fail("opaque assignment through non-object receiver")
		}
		args, _ := in.evalArgs(call.Args, e, ns)
		recv, key = o, hashAll(hashStr(callee.Member), in.hashArgs(args))
	case *ast.DeclRefExpr:
		v := in.eval(callee, e, ns)
		if p, ok := v.(ptrV); ok {
			v = p.obj
		}
		o, ok := v.(*object)
		if !ok {
			in.fail("assignment to call on non-object %q", callee.Name.Plain())
		}
		args, _ := in.evalArgs(call.Args, e, ns)
		recv, key = o, hashAll(hashStr("operator()"), in.hashArgs(args))
	default:
		in.fail("unsupported assignment target")
	}
	if !recv.opaque {
		in.fail("assignment through call on non-opaque object")
	}
	cur := in.opaqueCall("load", recv, nil, []value{intV(int64(key & opaqueMask))}, nil)
	var nv value
	if ex.Op == token.Assign {
		nv = in.eval(ex.R, e, ns)
	} else {
		nv = in.arith(compoundBase(ex.Op), cur, in.eval(ex.R, e, ns))
	}
	in.opaqueStore(recv, key, nv)
	return nv
}

func stripParens(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

func compoundBase(op token.Kind) token.Kind {
	switch op {
	case token.PlusEq:
		return token.Plus
	case token.MinusEq:
		return token.Minus
	case token.StarEq:
		return token.Star
	case token.SlashEq:
		return token.Slash
	case token.PercentEq:
		return token.Percent
	case token.AmpEq:
		return token.Amp
	case token.PipeEq:
		return token.Pipe
	case token.CaretEq:
		return token.Caret
	case token.ShlEq:
		return token.Shl
	case token.ShrEq:
		return token.Shr
	}
	return op
}

func (in *interp) arith(op token.Kind, l, r value) value {
	if lf, ok := l.(floatV); ok {
		return in.floatArith(op, float64(lf), in.toFloat(r))
	}
	if rf, ok := r.(floatV); ok {
		return in.floatArith(op, in.toFloat(l), float64(rf))
	}
	if ls, ok := l.(strV); ok {
		if rs, ok := r.(strV); ok && op == token.Plus {
			return strV(string(ls) + string(rs))
		}
		if op == token.EqEq || op == token.NotEq {
			rs, _ := r.(strV)
			return boolInt((ls == rs) == (op == token.EqEq))
		}
	}
	a, b := in.toInt(l), in.toInt(r)
	switch op {
	case token.Plus:
		return intV(a + b)
	case token.Minus:
		return intV(a - b)
	case token.Star:
		return intV(a * b)
	case token.Slash:
		if b == 0 {
			in.fail("integer division by zero")
		}
		return intV(a / b)
	case token.Percent:
		if b == 0 {
			in.fail("integer modulo by zero")
		}
		return intV(a % b)
	case token.Amp:
		return intV(a & b)
	case token.Pipe:
		return intV(a | b)
	case token.Caret:
		return intV(a ^ b)
	case token.Shl:
		return intV(a << (uint64(b) & 63))
	case token.Shr:
		return intV(a >> (uint64(b) & 63))
	case token.Less:
		return boolInt(a < b)
	case token.Greater:
		return boolInt(a > b)
	case token.LessEq:
		return boolInt(a <= b)
	case token.GreaterEq:
		return boolInt(a >= b)
	case token.EqEq:
		return boolInt(a == b)
	case token.NotEq:
		return boolInt(a != b)
	case token.Comma:
		return r
	}
	in.fail("unsupported binary operator %v", op)
	return nil
}

func (in *interp) floatArith(op token.Kind, a, b float64) value {
	switch op {
	case token.Plus:
		return floatV(a + b)
	case token.Minus:
		return floatV(a - b)
	case token.Star:
		return floatV(a * b)
	case token.Slash:
		if b == 0 {
			in.fail("float division by zero")
		}
		return floatV(a / b)
	case token.Less:
		return boolInt(a < b)
	case token.Greater:
		return boolInt(a > b)
	case token.LessEq:
		return boolInt(a <= b)
	case token.GreaterEq:
		return boolInt(a >= b)
	case token.EqEq:
		return boolInt(a == b)
	case token.NotEq:
		return boolInt(a != b)
	}
	in.fail("unsupported float operator %v", op)
	return nil
}

func (in *interp) unary(ex *ast.UnaryExpr, e *env, ns []string) (value, *cell) {
	switch ex.Op {
	case token.PlusPlus, token.MinusMinus:
		_, c := in.evalCell(ex.X, e, ns)
		if c == nil {
			in.fail("++/-- target is not an lvalue")
		}
		old := in.toInt(c.v)
		delta := int64(1)
		if ex.Op == token.MinusMinus {
			delta = -1
		}
		c.v = intV(old + delta)
		if ex.Postfix {
			return intV(old), nil
		}
		return c.v, c
	case token.Minus:
		v := in.eval(ex.X, e, ns)
		if f, ok := v.(floatV); ok {
			return floatV(-f), nil
		}
		return intV(-in.toInt(v)), nil
	case token.Plus:
		return in.eval(ex.X, e, ns), nil
	case token.Exclaim:
		return boolInt(!in.truthy(in.eval(ex.X, e, ns))), nil
	case token.Tilde:
		return intV(^in.toInt(in.eval(ex.X, e, ns))), nil
	case token.Star:
		v := in.eval(ex.X, e, ns)
		if p, ok := v.(ptrV); ok {
			if p.obj == nil {
				in.fail("dereference of null pointer")
			}
			return p.obj, nil
		}
		in.fail("dereference of non-pointer %T", v)
	case token.Amp:
		v, _ := in.evalCell(ex.X, e, ns)
		if o, ok := v.(*object); ok {
			return ptrV{obj: o}, nil
		}
		in.fail("address-of non-object")
	}
	in.fail("unsupported unary operator %v", ex.Op)
	return nil, nil
}

// ----------------------------------------------------------- conversions

func boolInt(b bool) intV {
	if b {
		return 1
	}
	return 0
}

func (in *interp) truthy(v value) bool {
	switch x := v.(type) {
	case intV:
		return x != 0
	case floatV:
		return x != 0
	case strV:
		return x != ""
	case ptrV:
		return x.obj != nil
	case *object:
		return true
	}
	return false
}

func (in *interp) toInt(v value) int64 {
	switch x := v.(type) {
	case intV:
		return int64(x)
	case floatV:
		return int64(x)
	case strV:
		return int64(hashStr(string(x)) & opaqueMask)
	case *object:
		in.fail("cannot convert object %s to int", x.className)
	}
	in.fail("cannot convert %T to int", v)
	return 0
}

func (in *interp) toFloat(v value) float64 {
	switch x := v.(type) {
	case intV:
		return float64(x)
	case floatV:
		return float64(x)
	}
	in.fail("cannot convert %T to float", v)
	return 0
}

// render formats a value for the trace. Pointers render as their
// pointee so that a pointerized rewrite of an emitted object stays
// comparable to the original.
func (in *interp) render(v value) string {
	switch x := v.(type) {
	case intV:
		return strconv.FormatInt(int64(x), 10)
	case floatV:
		return strconv.FormatFloat(float64(x), 'g', -1, 64)
	case strV:
		return string(x)
	case ptrV:
		if x.obj == nil {
			return "<null>"
		}
		return in.render(x.obj)
	case *object:
		return fmt.Sprintf("o%x", in.hashVal(x)&opaqueMask)
	case voidV:
		return "<void>"
	}
	return fmt.Sprintf("<%T>", v)
}
