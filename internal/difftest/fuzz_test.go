package difftest

import (
	"testing"

	"repro/internal/fuzzgen"
)

// FuzzSubstitute is the native-fuzzing entry to the differential
// harness: the fuzz input is the generator seed, so go's coverage-guided
// mutation explores generator configurations while every executed
// program stays well-formed by construction. Only the cheap oracles run
// here (exec + idempotent); the full path/perf matrix runs in the smoke
// test and the yallafuzz CLI.
func FuzzSubstitute(f *testing.F) {
	for seed := int64(1); seed <= 10; seed++ {
		f.Add(seed, int64(8))
	}
	f.Fuzz(func(t *testing.T, seed, size int64) {
		if size < 1 || size > 24 {
			size = 8
		}
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed, Size: int(size)})
		r := Check(SubjectFor(p), Options{Oracles: []string{"exec", "idempotent"}})
		for _, v := range r.Violations {
			t.Errorf("seed %d size %d: %s", seed, size, v)
		}
	})
}

// FuzzIncrementalEdit fuzzes early cutoff end to end: the input picks a
// generated program AND a header-edit stream, and the incremental
// oracle demands that after every edit the live session's kept
// artifacts are byte-identical to a cold one-shot build of the same
// overlay, with benign edits scoring early cutoffs and macro edits
// invalidating. Coverage-guided mutation explores (program, stream)
// pairs the deterministic sweeps never enumerate.
func FuzzIncrementalEdit(f *testing.F) {
	for seed := int64(1); seed <= 6; seed++ {
		f.Add(seed, seed*37, int64(8))
	}
	f.Fuzz(func(t *testing.T, seed, stream, edits int64) {
		if edits < 1 || edits > 16 {
			edits = 8
		}
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed})
		r := Check(SubjectFor(p), Options{
			Oracles:          []string{"incremental"},
			IncrementalSeed:  stream,
			IncrementalEdits: int(edits),
		})
		for _, v := range r.Violations {
			t.Errorf("seed %d stream %d edits %d: %s", seed, stream, edits, v)
		}
	})
}

// FuzzCheck fuzzes the safety oracle from both sides: clean programs
// (unsafe=false) must produce zero check-pass errors, and programs
// generated around a known-unsafe construct (unsafe=true) must produce
// at least one. Either miss is a yallacheck bug — a false positive
// would block valid substitutions at the gate, a false negative would
// let a miscompile through.
func FuzzCheck(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, int64(6), false)
		f.Add(seed, int64(6), true)
	}
	f.Fuzz(func(t *testing.T, seed, size int64, unsafe bool) {
		if size < 1 || size > 24 {
			size = 6
		}
		p := fuzzgen.Generate(fuzzgen.Config{Seed: seed, Size: int(size), Unsafe: unsafe})
		r := Check(SubjectFor(p), Options{Oracles: []string{"safety"}, MustFlag: p.Unsafe})
		for _, v := range r.Violations {
			t.Errorf("seed %d size %d unsafe=%v: %s", seed, size, unsafe, v)
		}
	})
}
