package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/daemon"
	"repro/internal/inval"
	"repro/internal/vfs"
)

// ------------------------------------------------------------ incremental
//
// The incremental oracle is the differential proof behind early cutoff:
// it drives a daemon session through a deterministic stream of header
// edits — comment appends, inline-body rewrites, unused-declaration
// adds, macro definitions, touch-only saves — and after EVERY edit
// demands that the generated artifacts the session is still using are
// byte-identical to a cold one-shot substitution over an equivalent
// overlay. A benign edit the decl-level diff proved interface-neutral
// keeps the Prepare-time artifacts live without rerunning the tool;
// if those kept bytes ever differ from what a fresh run would produce,
// the cutoff adopted stale output and this oracle catches it.
//
// Source-file edits are deliberately absent from the stream: they are
// non-structural, never consult the invalidation planner, and the
// build cache's dependency manifests own their rebuild story.

// incrementalEditKinds is the stream alphabet, selected per step by the
// seeded generator.
var incrementalEditKinds = []string{"comment", "body", "decl", "macro", "touch"}

// incrementalOracle replays a seeded header-edit stream against a live
// session and byte-compares its generated files with a cold build after
// every step. It also pins the planner's per-kind contract when the
// header parses in isolation: benign kinds must score an early cutoff,
// macro edits must invalidate, and touch-only saves must change nothing.
func incrementalOracle(res *Result, s *corpus.Subject, opt Options) {
	seed := opt.IncrementalSeed
	if seed == 0 {
		seed = 1
	}
	edits := opt.IncrementalEdits
	if edits <= 0 {
		edits = 8
	}

	srv := daemon.New(daemon.Config{Workers: 2})
	sess, err := srv.CreateSessionFor("inc-"+s.Name, s, "yalla")
	if err != nil {
		res.addf("incremental", "create session: %v", err)
		return
	}
	ctx := context.Background()
	if _, err := sess.Cycle(ctx, nil, ""); err != nil {
		res.addf("incremental", "initial cycle: %v", err)
		return
	}

	hdrPath := ""
	for _, sp := range s.SearchPaths {
		cand := sp + "/" + s.Header
		if sp == "." {
			cand = s.Header
		}
		cand = vfs.Clean(cand)
		if _, err := sess.ReadFile(cand); err == nil {
			hdrPath = cand
			break
		}
	}
	if hdrPath == "" {
		res.addf("incremental", "cannot resolve header %q in session tree", s.Header)
		return
	}

	// mirror tracks every edit so the cold build sees the same overlay.
	mirror := map[string]string{}
	read := func(p string) string {
		if c, ok := mirror[p]; ok {
			return c
		}
		c, _ := sess.ReadFile(p)
		return c
	}
	// The per-kind planner contract is only enforceable when the header
	// parses in isolation; otherwise every edit is (soundly) conservative.
	hdrOK := inval.Snapshot(hdrPath, read(hdrPath)).OK

	rng := rand.New(rand.NewSource(seed))
	probeRet := -1 // last constant in the probe body, -1 = not added yet
	warm := true   // last cycle succeeded; planner expectations apply
	for i := 0; i < edits; i++ {
		kind := incrementalEditKinds[rng.Intn(len(incrementalEditKinds))]
		content := read(hdrPath)
		switch kind {
		case "comment":
			content += fmt.Sprintf("\n// yf stream comment %d\n", i)
		case "body":
			if probeRet < 0 {
				// First body edit plants the probe — an unused inline
				// definition, i.e. a decl add for the planner.
				kind = "decl"
				content += "\ninline int yf_stream_probe() { return 0; }\n"
				probeRet = 0
			} else {
				content = strings.Replace(content,
					fmt.Sprintf("yf_stream_probe() { return %d; }", probeRet),
					fmt.Sprintf("yf_stream_probe() { return %d; }", i), 1)
				probeRet = i
			}
		case "decl":
			content += fmt.Sprintf("\ninline int yf_stream_fn_%d() { return %d; }\n", i, i)
		case "macro":
			content += fmt.Sprintf("\n#define YF_STREAM_%d %d\n", i, i)
		case "touch":
			// identical content: a no-op save
		}

		er := sess.Edit(hdrPath, content)
		mirror[hdrPath] = content
		if warm && hdrOK {
			switch kind {
			case "touch":
				if er.Changed {
					res.addf("incremental", "edit %d: touch-only save reported changed", i)
				}
			case "comment", "body":
				if !er.EarlyCutoff {
					res.addf("incremental", "edit %d (%s): benign header edit not early-cutoff (action %q: %s)",
						i, kind, er.Action, er.Reason)
				}
			case "macro":
				if !er.Invalidated {
					res.addf("incremental", "edit %d: macro edit did not invalidate (action %q)", i, er.Action)
				}
			}
		}

		_, cyErr := sess.Cycle(ctx, nil, "")

		fsCold := s.FS.Overlay()
		for p, c := range mirror {
			fsCold.Write(p, c)
		}
		sub, coldErr := substitute(fsCold, s, nil, "")
		switch {
		case cyErr != nil && coldErr != nil:
			// Both paths reject the tree the same way; stay consistent.
			warm = false
			continue
		case cyErr != nil:
			res.addf("incremental", "edit %d (%s): session cycle failed (%v) but cold build succeeds", i, kind, cyErr)
			warm = false
			continue
		case coldErr != nil:
			res.addf("incremental", "edit %d (%s): cold build failed (%v) but session cycle succeeds", i, kind, coldErr)
			warm = true
			continue
		}
		warm = true
		for _, p := range generatedPaths(sub) {
			want, err := fsCold.Read(p)
			if err != nil {
				res.addf("incremental", "edit %d (%s): cold build missing %q", i, kind, p)
				return
			}
			got, err := sess.ReadFile(p)
			if err != nil {
				res.addf("incremental", "edit %d (%s): session missing generated file %q", i, kind, p)
				return
			}
			if got != want {
				res.addf("incremental", "edit %d (%s, action %q): session %q diverged from cold one-shot build",
					i, kind, er.Action, p)
				return
			}
		}
	}
}
