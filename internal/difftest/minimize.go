package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fuzzgen"
)

// Minimize shrinks a failing generated program to a (1-minimal) smaller
// program that still trips the same oracle: it greedily drops program
// chunks (the dependency closure keeps candidates well-formed), then
// applies the semantic simplification passes — inline type aliases,
// de-templatize classes — keeping every change that preserves the
// failure. Returns the minimized program and the failing Result observed
// on it.
func Minimize(p *fuzzgen.Program, opt Options) (*fuzzgen.Program, *Result, error) {
	if p.Spec == nil {
		return nil, nil, fmt.Errorf("difftest: program has no spec to minimize")
	}
	base := Check(SubjectFor(p), opt)
	if base.OK() {
		return nil, nil, fmt.Errorf("difftest: program does not fail; nothing to minimize")
	}
	oracle := base.Violations[0].Oracle
	// Re-checking candidates only needs the one failing oracle.
	opt.Oracles = []string{oracle}

	spec, last := p.Spec, base
	fails := func(cand *fuzzgen.Spec) (*Result, bool) {
		if cand == nil {
			return nil, false
		}
		r := Check(SubjectFor(cand.Program()), opt)
		for _, v := range r.Violations {
			if v.Oracle == oracle {
				return r, true
			}
		}
		return nil, false
	}

	// Greedy chunk dropping to a fixpoint (1-minimal: no single chunk —
	// with its dependents — can be removed and still fail).
	for changed := true; changed; {
		changed = false
		for _, id := range spec.KeptIDs() {
			keep := make([]int, 0)
			for _, k := range spec.KeptIDs() {
				if k != id {
					keep = append(keep, k)
				}
			}
			cand := spec.WithKeep(keep)
			// Only candidates that strictly shrink the kept set count as
			// progress; anything else could cycle the fixpoint loop.
			if len(cand.KeptIDs()) >= len(spec.KeptIDs()) {
				continue
			}
			if r, bad := fails(cand); bad {
				spec, last = cand, r
				changed = true
			}
		}
	}
	// Simplification passes.
	for _, c := range spec.Chunks {
		if c.AliasName != "" {
			if r, bad := fails(spec.InlineAlias(c.ID)); bad {
				spec, last = spec.InlineAlias(c.ID), r
			}
		}
	}
	for _, c := range spec.Chunks {
		if c.TemplateName != "" {
			if r, bad := fails(spec.PlainTemplate(c.ID)); bad {
				spec, last = spec.PlainTemplate(c.ID), r
			}
		}
	}
	return spec.Program(), last, nil
}

// ----------------------------------------------------------------- repros

// Repro is a saved minimal reproducer: the complete file set plus the
// oracle it trips, re-runnable without the generator.
type Repro struct {
	Name        string            `json:"name"`
	Seed        int64             `json:"seed"`
	Oracle      string            `json:"oracle"`
	Detail      string            `json:"detail"`
	Keep        []int             `json:"keep,omitempty"`
	MainFile    string            `json:"main_file"`
	Header      string            `json:"header"`
	SearchPaths []string          `json:"search_paths"`
	Files       map[string]string `json:"files"`
	// SourceLines counts the non-blank generated source lines (main +
	// library header, excluding constant filler dependencies).
	SourceLines int `json:"source_lines"`
}

// NewRepro packages a failing (ideally minimized) program and its
// result.
func NewRepro(p *fuzzgen.Program, r *Result) *Repro {
	v := Violation{Oracle: "unknown", Detail: "unknown"}
	if len(r.Violations) > 0 {
		v = r.Violations[0]
	}
	rep := &Repro{
		Name:        p.Name + "-" + v.Oracle,
		Oracle:      v.Oracle,
		Detail:      v.Detail,
		MainFile:    p.MainFile,
		Header:      p.Header,
		SearchPaths: p.SearchPaths,
		Files:       p.Files,
		SourceLines: SourceLines(p),
	}
	if p.Spec != nil {
		rep.Seed = p.Spec.Seed
		rep.Keep = p.Spec.Keep
	}
	return rep
}

// SourceLines counts the non-blank lines of the generated main and
// library header (the part the minimizer shrinks; filler headers are
// constant mass, not test case).
func SourceLines(p *fuzzgen.Program) int {
	n := 0
	for _, path := range []string{p.MainFile, fuzzgen.HeaderPath} {
		for _, line := range strings.Split(p.Files[path], "\n") {
			t := strings.TrimSpace(line)
			if t == "" || strings.HasPrefix(t, "#include") || t == "#pragma once" {
				continue
			}
			n++
		}
	}
	return n
}

// Save writes the repro as pretty JSON under dir (created if missing)
// and returns the file path.
func (r *Repro) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Name+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads a saved reproducer.
func LoadRepro(path string) (*Repro, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if r.MainFile == "" || len(r.Files) == 0 {
		return nil, fmt.Errorf("%s: not a repro file", path)
	}
	return &r, nil
}

// LoadRepros reads every .json reproducer under dir (missing dir is an
// empty set), sorted by name.
func LoadRepros(dir string) ([]*Repro, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*Repro
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		r, err := LoadRepro(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Program reconstructs the repro's program for re-checking.
func (r *Repro) Program() *fuzzgen.Program {
	return &fuzzgen.Program{
		Name:        r.Name,
		Files:       r.Files,
		MainFile:    r.MainFile,
		Header:      r.Header,
		SearchPaths: r.SearchPaths,
	}
}

// Check re-runs the oracles over the saved reproducer. A fixed repro
// passes; a still-broken pipeline reports the violation again.
func (r *Repro) Check(opt Options) *Result {
	return Check(SubjectFor(r.Program()), opt)
}
