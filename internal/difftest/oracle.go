// Package difftest is the differential-testing harness for the Header
// Substitution pipeline. It checks the paper's core claim — that
// substitution is *semantics-preserving* while compiling faster — on
// arbitrary subjects (corpus entries or fuzzgen-generated programs) with
// five oracles:
//
//	safety      the yallacheck passes produce no error diagnostic on a
//	            clean program (no false positives) and at least one on a
//	            program generated with a known-unsafe construct; when
//	            the exec oracle later catches a real divergence the
//	            passes stayed silent about, that silence is a violation
//	exec        the original program and the substituted program
//	            (modified sources + wrappers TU) produce identical
//	            observable output under the reference interpreter
//	idempotent  substituting already-substituted sources is a no-op
//	            (the tool reports nothing left to substitute) or a
//	            stable fixpoint (byte-identical regenerated artifacts)
//	paths       cache-on/cache-off, -j1/-jN, and daemon-session vs.
//	            one-shot execution paths produce byte-identical
//	            generated files
//	incremental after every header edit in a seeded stream, a live
//	            session's generated artifacts — kept across benign
//	            edits by the decl-level early cutoff — are
//	            byte-identical to a cold one-shot build of the same
//	            overlay (incremental.go)
//	perf        the substituted rebuild cost is no worse than the
//	            baseline rebuild cost (the paper's headline property)
//	split       decomposing the subject's god header (internal/split)
//	            preserves observable behavior (exec equivalence of
//	            original vs. decomposed) and is path-independent: the
//	            rewritten file set is byte-identical at -j 1 and -j 4
//
// A failed oracle yields a Violation with a deterministic detail string;
// the minimizer (minimize.go) shrinks a failing generated program to a
// minimal reproducer.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/buildcache"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpp/ast"
	"repro/internal/cpp/parser"
	"repro/internal/cpp/preprocessor"
	"repro/internal/daemon"
	"repro/internal/devcycle"
	"repro/internal/fuzzgen"
	"repro/internal/obs"
	"repro/internal/split"
	"repro/internal/vfs"
)

// OracleNames lists every oracle in canonical run order.
var OracleNames = []string{"safety", "exec", "idempotent", "paths", "incremental", "perf", "split"}

// mutateGenerated is a test-only fault-injection hook: when set, every
// generated file (lightweight header, wrappers, modified sources) is
// passed through it right after substitution, before the exec oracle
// interprets the substituted program. Tests use it to verify that a
// broken rewrite actually trips an oracle.
var mutateGenerated func(path, content string) string

// Violation is one oracle failure.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Result is the outcome of checking one subject against the oracles.
type Result struct {
	Subject    string      `json:"subject"`
	Violations []Violation `json:"violations,omitempty"`
	// Skipped records oracles that could not run with the reason (e.g.
	// both program variants fail identically under the interpreter).
	Skipped []string `json:"skipped,omitempty"`
}

// OK reports whether every oracle passed.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

func (r *Result) addf(oracle, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

func (r *Result) skipf(oracle, format string, args ...any) {
	r.Skipped = append(r.Skipped, oracle+": "+fmt.Sprintf(format, args...))
}

// Options tunes a Check run.
type Options struct {
	// Oracles selects a subset of OracleNames; nil or empty runs all.
	Oracles []string
	// Budget bounds interpreter steps per program; <= 0 uses the
	// interpreter default.
	Budget int
	// MustFlag inverts the safety oracle's expectation: the subject was
	// generated with a known-unsafe construct, so zero error diagnostics
	// is the violation (a false negative).
	MustFlag bool
	// IncrementalSeed selects the incremental oracle's edit stream;
	// 0 means stream 1. IncrementalEdits is the stream length; <= 0
	// means 8.
	IncrementalSeed  int64
	IncrementalEdits int
	// Obs, when set, records one span per oracle plus check counters.
	Obs *obs.Obs
}

func (o Options) want(name string) bool {
	if len(o.Oracles) == 0 {
		return true
	}
	for _, n := range o.Oracles {
		if n == name {
			return true
		}
	}
	return false
}

// SubjectFor wraps a generated program as a corpus subject so the whole
// devcycle/daemon machinery can run it unchanged.
func SubjectFor(p *fuzzgen.Program) *corpus.Subject {
	fs := vfs.New()
	paths := make([]string, 0, len(p.Files))
	for path := range p.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fs.Write(path, p.Files[path])
	}
	return &corpus.Subject{
		Name:                p.Name,
		Library:             "Fuzz",
		FS:                  fs,
		MainFile:            p.MainFile,
		Sources:             []string{p.MainFile},
		Header:              p.Header,
		SearchPaths:         p.SearchPaths,
		KernelIters:         4,
		WrapperCallsPerIter: 2,
	}
}

// Check runs the selected oracles over one subject. The subject's FS is
// never written to: every pipeline run works on a private overlay.
func Check(s *corpus.Subject, opt Options) *Result {
	o := opt.Obs
	sp := o.Start("difftest.check")
	defer sp.End()
	sp.SetStr("subject", s.Name)
	res := &Result{Subject: s.Name}

	// The safety oracle runs before (and independently of) the
	// substitution: it judges the *input* program.
	safetyErrs, safetyRan := 0, false
	if opt.want("safety") {
		ssp := o.Start("oracle.safety")
		safetyErrs = safetyOracle(res, s, opt.MustFlag)
		safetyRan = true
		ssp.End()
	}

	// One primary substitution; exec/idempotent/paths all reuse it.
	fsSub := s.FS.Overlay()
	sub, err := substitute(fsSub, s, nil, "")
	if err != nil {
		res.addf("pipeline", "substitute failed: %v", err)
		o.Counter("difftest.violations").Add(1)
		return res
	}
	base := snapshotGenerated(fsSub, sub)
	applyFault(fsSub, sub)

	if opt.want("exec") {
		esp := o.Start("oracle.exec")
		execOracle(res, s, fsSub, sub, opt.Budget)
		esp.End()
	}
	// Cross-check: an exec-caught miscompile the passes did not flag is
	// a safety false negative. Injected faults (mutateGenerated) are
	// exempt — they corrupt the *generated* output, which no static
	// analysis of the input can anticipate.
	if safetyRan && safetyErrs == 0 && mutateGenerated == nil {
		for _, v := range res.Violations {
			if v.Oracle == "exec" {
				res.addf("safety", "exec divergence not flagged by any check pass: %s", v.Detail)
				break
			}
		}
	}
	if opt.want("idempotent") {
		isp := o.Start("oracle.idempotent")
		idempotentOracle(res, s, fsSub, sub)
		isp.End()
	}
	if opt.want("paths") {
		psp := o.Start("oracle.paths")
		pathsOracle(res, s, base)
		psp.End()
	}
	if opt.want("incremental") {
		nsp := o.Start("oracle.incremental")
		incrementalOracle(res, s, opt)
		nsp.End()
	}
	if opt.want("perf") {
		fsp := o.Start("oracle.perf")
		perfOracle(res, s)
		fsp.End()
	}
	if opt.want("split") {
		ssp := o.Start("oracle.split")
		splitOracle(res, s, opt.Budget)
		ssp.End()
	}
	o.Counter("difftest.checks").Add(1)
	o.Counter("difftest.violations").Add(uint64(len(res.Violations)))
	return res
}

// substitute runs core.Substitute on fs with panic containment (a
// crashing rewrite is a finding, not a harness abort).
func substitute(fs *vfs.FS, s *corpus.Subject, cache *buildcache.Cache, outDir string) (sub *core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			sub, err = nil, fmt.Errorf("panic: %v", p)
		}
	}()
	if outDir == "" {
		outDir = s.OutDir()
	}
	opts := core.Options{
		FS:          fs,
		SearchPaths: s.SearchPaths,
		Sources:     s.Sources,
		Header:      s.Header,
		OutDir:      outDir,
		// The harness judges safety through its own oracle; the engine's
		// gate must not pre-empt the downstream oracles (and fault
		// injection plants bugs the gate would never see anyway).
		SkipCheck: true,
	}
	if cache != nil {
		opts.TokenCache = cache
	}
	return core.Substitute(opts)
}

// generatedPaths lists the substitution's output files in stable order.
func generatedPaths(sub *core.Result) []string {
	paths := []string{sub.LightweightPath, sub.WrappersPath}
	for _, p := range sub.ModifiedSources {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

func snapshotGenerated(fs *vfs.FS, sub *core.Result) map[string]string {
	out := map[string]string{}
	for _, p := range generatedPaths(sub) {
		if c, err := fs.Read(p); err == nil {
			out[p] = c
		}
	}
	return out
}

func applyFault(fs *vfs.FS, sub *core.Result) {
	if mutateGenerated == nil {
		return
	}
	for _, p := range generatedPaths(sub) {
		if c, err := fs.Read(p); err == nil {
			fs.Write(p, mutateGenerated(p, c))
		}
	}
}

// ---------------------------------------------------------------- safety

// safetyOracle runs the yallacheck passes over the *input* program and
// returns the number of error diagnostics. With mustFlag unset, any
// error on a program believed clean is a false positive; with mustFlag
// set (the subject was generated around a known-unsafe construct),
// silence is the violation — a false negative.
func safetyOracle(res *Result, s *corpus.Subject, mustFlag bool) int {
	cres, err := check.Run(check.Options{
		FS:          s.FS.Overlay(),
		SearchPaths: s.SearchPaths,
		Sources:     s.Sources,
		Header:      s.Header,
	})
	if err != nil {
		res.addf("safety", "check run failed: %v", err)
		return 0
	}
	errs := cres.Errors()
	switch {
	case mustFlag && len(errs) == 0:
		res.addf("safety", "known-unsafe program produced no error diagnostic (verdict %s)", cres.Verdict)
	case !mustFlag && len(errs) > 0:
		res.addf("safety", "false positive on clean program: %s", errs[0])
	}
	return len(errs)
}

// ------------------------------------------------------------------ exec

func execOracle(res *Result, s *corpus.Subject, fsSub *vfs.FS, sub *core.Result, budget int) {
	orig, origErr := Interpret(s.FS.Overlay(), s.SearchPaths, s.Sources, budget)

	files := make([]string, 0, len(s.Sources)+1)
	for _, src := range s.Sources {
		if m, ok := sub.ModifiedSources[src]; ok {
			files = append(files, m)
		} else {
			files = append(files, src)
		}
	}
	files = append(files, sub.WrappersPath)
	paths := append(append([]string{}, s.SearchPaths...), dirOf(sub.LightweightPath))
	got, gotErr := Interpret(fsSub, paths, files, budget)

	switch {
	case origErr != nil && gotErr != nil:
		// The interpreter covers the generated subset, not all of C++;
		// when BOTH variants are outside it, the oracle abstains.
		res.skipf("exec", "both variants uninterpretable: original: %v; substituted: %v", origErr, gotErr)
	case origErr != nil:
		res.addf("exec", "original uninterpretable but substituted ran: %v", origErr)
	case gotErr != nil:
		res.addf("exec", "substituted program failed: %v (original ran fine)", gotErr)
	default:
		if d := diffTraces(orig, got); d != "" {
			res.addf("exec", "output diverged: %s", d)
		}
	}
}

// Interpret preprocesses, parses, and runs a set of translation units
// as one program, returning its observable trace.
func Interpret(fs *vfs.FS, searchPaths, files []string, budget int) (tr *Trace, err error) {
	defer func() {
		if p := recover(); p != nil {
			tr, err = nil, fmt.Errorf("interpreter panic: %v", p)
		}
	}()
	tus := make([]*ast.TranslationUnit, 0, len(files))
	for _, f := range files {
		tu, err := ParseTU(fs, searchPaths, f)
		if err != nil {
			return nil, err
		}
		tus = append(tus, tu)
	}
	return Run(tus, budget)
}

// ParseTU runs the real pipeline frontend (preprocessor + parser) on one
// file.
func ParseTU(fs *vfs.FS, searchPaths []string, file string) (*ast.TranslationUnit, error) {
	pp := preprocessor.New(fs, searchPaths...)
	pr, err := pp.Preprocess(file)
	if err != nil {
		return nil, fmt.Errorf("%s: preprocess: %v", file, err)
	}
	p := parser.New(pr.Tokens)
	tu, err := p.Parse()
	if err != nil {
		return nil, fmt.Errorf("%s: parse: %v", file, err)
	}
	if errs := p.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("%s: parse: %v", file, errs[0])
	}
	return tu, nil
}

func diffTraces(a, b *Trace) string {
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		if a.Events[i] != b.Events[i] {
			return fmt.Sprintf("event %d: original %q vs substituted %q", i, a.Events[i], b.Events[i])
		}
	}
	if len(a.Events) != len(b.Events) {
		return fmt.Sprintf("event count: original %d vs substituted %d", len(a.Events), len(b.Events))
	}
	if a.Ret != b.Ret {
		return fmt.Sprintf("return value: original %d vs substituted %d", a.Ret, b.Ret)
	}
	return ""
}

func dirOf(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return "."
}

// ------------------------------------------------------------ idempotent

func idempotentOracle(res *Result, s *corpus.Subject, fsSub *vfs.FS, sub *core.Result) {
	fs2 := fsSub.Overlay()
	srcs := make([]string, 0, len(s.Sources))
	for _, src := range s.Sources {
		if m, ok := sub.ModifiedSources[src]; ok {
			srcs = append(srcs, m)
		} else {
			srcs = append(srcs, src)
		}
	}
	paths := append(append([]string{}, s.SearchPaths...), dirOf(sub.LightweightPath))
	out2 := dirOf(sub.LightweightPath) + "_idem"
	sub2, err := core.Substitute(core.Options{
		FS:          fs2,
		SearchPaths: paths,
		Sources:     srcs,
		Header:      s.Header,
		OutDir:      out2,
		SkipCheck:   true,
	})
	if err != nil {
		// The expected no-op shape: the substituted sources no longer
		// include the expensive header, so the tool has nothing to do.
		if strings.Contains(err.Error(), "not included by any source") ||
			strings.Contains(err.Error(), "no #include") {
			return
		}
		res.addf("idempotent", "re-substitution failed unexpectedly: %v", err)
		return
	}
	// Otherwise it must be a fixpoint: regenerated artifacts match the
	// first generation byte for byte.
	pairs := [][2]string{
		{sub.LightweightPath, sub2.LightweightPath},
		{sub.WrappersPath, sub2.WrappersPath},
	}
	for i, src := range srcs {
		if m, ok := sub2.ModifiedSources[src]; ok {
			pairs = append(pairs, [2]string{srcs[i], m})
		}
	}
	for _, pr := range pairs {
		a, errA := fs2.Read(pr[0])
		b, errB := fs2.Read(pr[1])
		if errA != nil || errB != nil {
			res.addf("idempotent", "cannot read %q/%q for fixpoint compare", pr[0], pr[1])
			return
		}
		if a != b {
			res.addf("idempotent", "re-substitution changed %q (not a fixpoint)", pr[0])
			return
		}
	}
}

// ----------------------------------------------------------------- paths

// pathsOracle re-runs the substitution through every alternate execution
// path and demands byte-identical generated files.
func pathsOracle(res *Result, s *corpus.Subject, base map[string]string) {
	compare := func(variant string, got map[string]string) {
		keys := make([]string, 0, len(base))
		for k := range base {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g, ok := got[k]
			if !ok {
				res.addf("paths", "%s: missing generated file %q", variant, k)
				return
			}
			if g != base[k] {
				res.addf("paths", "%s: %q differs from one-shot output", variant, k)
				return
			}
		}
	}

	// Cache-on one-shot, then a warm re-run against the same cache.
	cache := buildcache.New()
	for _, variant := range []string{"cache-cold", "cache-warm"} {
		fs := s.FS.Overlay()
		sub, err := substitute(fs, s, cache, "")
		if err != nil {
			res.addf("paths", "%s: substitute failed: %v", variant, err)
			return
		}
		compare(variant, snapshotGenerated(fs, sub))
	}

	// Parallel: N workers share one fresh cache, each on its own
	// overlay (the -j N path; exercises singleflight and hash reuse).
	const jobs = 4
	pcache := buildcache.New()
	type out struct {
		files map[string]string
		err   error
	}
	outs := make([]out, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := s.FS.Overlay()
			sub, err := substitute(fs, s, pcache, "")
			if err != nil {
				outs[i] = out{err: err}
				return
			}
			outs[i] = out{files: snapshotGenerated(fs, sub)}
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			res.addf("paths", "parallel[%d]: substitute failed: %v", i, o.err)
			return
		}
		compare(fmt.Sprintf("parallel[%d]", i), o.files)
	}

	// Daemon session path.
	srv := daemon.New(daemon.Config{Workers: 2})
	sess, err := srv.CreateSessionFor("difftest-"+s.Name, s, "yalla")
	if err != nil {
		res.addf("paths", "daemon: create session: %v", err)
		return
	}
	dres, _, err := sess.Substitute(context.Background(), nil)
	if err != nil {
		res.addf("paths", "daemon: substitute failed: %v", err)
		return
	}
	compare("daemon", dres.Files)
}

// ------------------------------------------------------------------ perf

func perfOracle(res *Result, s *corpus.Subject) {
	cycle := func(mode devcycle.Mode) (devcycle.Times, error) {
		st, err := devcycle.PrepareWith(s, mode, devcycle.Config{FS: s.FS.Overlay()})
		if err != nil {
			return devcycle.Times{}, fmt.Errorf("prepare %s: %v", mode, err)
		}
		t, err := st.Cycle()
		if err != nil {
			return devcycle.Times{}, fmt.Errorf("cycle %s: %v", mode, err)
		}
		return t, nil
	}
	tD, err := cycle(devcycle.Default)
	if err != nil {
		res.addf("perf", "%v", err)
		return
	}
	tY, err := cycle(devcycle.Yalla)
	if err != nil {
		res.addf("perf", "%v", err)
		return
	}
	if tY.Compile > tD.Compile {
		res.addf("perf", "substituted rebuild compile %v exceeds baseline %v", tY.Compile, tD.Compile)
	}
}

// ----------------------------------------------------------------- split

// splitOracle decomposes the subject's god header on a private overlay
// and demands (a) exec equivalence — the decomposed program's observable
// trace matches the original's — and (b) path independence — the
// partition digest and every rewritten byte are identical at -j 1 and
// -j 4. A header the analysis refuses (ErrNotDecomposable) is a skip:
// refusal leaves the tree untouched, so there is nothing to diverge.
func splitOracle(res *Result, s *corpus.Subject, budget int) {
	decompose := func(jobs int) (fs *vfs.FS, r *split.Result, err error) {
		defer func() {
			if p := recover(); p != nil {
				fs, r, err = nil, nil, fmt.Errorf("panic: %v", p)
			}
		}()
		fs = s.FS.Overlay()
		r, err = split.Decompose(split.Options{
			FS: fs, SearchPaths: s.SearchPaths, Sources: s.Sources,
			Header: s.Header, MaxParts: 4, Jobs: jobs,
		})
		return fs, r, err
	}
	fsDec, dec, err := decompose(1)
	if err != nil {
		if errors.Is(err, split.ErrNotDecomposable) {
			res.skipf("split", "header not decomposable: %v", err)
			return
		}
		res.addf("split", "decompose failed: %v", err)
		return
	}

	// Exec equivalence of original vs. decomposed, same abstention rule
	// as the exec oracle: both variants outside the interpreted subset
	// is a skip, a one-sided failure is a violation.
	orig, origErr := Interpret(s.FS.Overlay(), s.SearchPaths, s.Sources, budget)
	got, gotErr := Interpret(fsDec, s.SearchPaths, s.Sources, budget)
	switch {
	case origErr != nil && gotErr != nil:
		res.skipf("split", "both variants uninterpretable: original: %v; decomposed: %v", origErr, gotErr)
	case origErr != nil:
		res.addf("split", "original uninterpretable but decomposed ran: %v", origErr)
	case gotErr != nil:
		res.addf("split", "decomposed program failed: %v (original ran fine)", gotErr)
	default:
		if d := diffTraces(orig, got); d != "" {
			res.addf("split", "output diverged: %s", d)
		}
	}

	// Path independence: a -j 4 rerun must produce the same partition
	// and write byte-identical files.
	_, dec4, err := decompose(4)
	if err != nil {
		res.addf("split", "-j4 decompose failed after -j1 succeeded: %v", err)
		return
	}
	if dec4.Digest != dec.Digest {
		res.addf("split", "partition digest differs across -j: %s vs %s", dec.Digest, dec4.Digest)
		return
	}
	if len(dec4.Files) != len(dec.Files) {
		res.addf("split", "written file count differs across -j: %d vs %d", len(dec.Files), len(dec4.Files))
		return
	}
	for p, want := range dec.Files {
		if dec4.Files[p] != want {
			res.addf("split", "-j4 wrote different bytes for %q", p)
			return
		}
	}
}
